package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveHolds computes a(x, y) directly from pointer walks; it is the
// reference oracle against which Holds (the pre/post-based definition) and
// Step are validated.
func naiveHolds(t *Tree, a Axis, x, y NodeID) bool {
	switch a {
	case Self:
		return x == y
	case Child:
		return t.Parent(y) == x
	case Parent:
		return t.Parent(x) == y
	case Descendant:
		return t.isDescendantByWalk(x, y)
	case Ancestor:
		return t.isDescendantByWalk(y, x)
	case DescendantOrSelf:
		return x == y || t.isDescendantByWalk(x, y)
	case AncestorOrSelf:
		return x == y || t.isDescendantByWalk(y, x)
	case NextSiblingAxis:
		return t.NextSibling(x) == y && y != InvalidNode
	case PrevSiblingAxis:
		return t.PrevSibling(x) == y && y != InvalidNode
	case FollowingSibling:
		for s := t.NextSibling(x); s != InvalidNode; s = t.NextSibling(s) {
			if s == y {
				return true
			}
		}
		return false
	case PrecedingSibling:
		for s := t.PrevSibling(x); s != InvalidNode; s = t.PrevSibling(s) {
			if s == y {
				return true
			}
		}
		return false
	case FollowingSiblingOrSelf:
		return x == y || naiveHolds(t, FollowingSibling, x, y)
	case PrecedingSiblingOrSelf:
		return x == y || naiveHolds(t, PrecedingSibling, x, y)
	case Following:
		// Definition from Section 2: exists x0, y0 with NextSibling+(x0,y0),
		// Child*(x0,x) ... wait, the definition is Child*(x0, x) where x0 is an
		// ancestor-or-self of x.  Equivalently: x wholly precedes y.
		for x0 := x; x0 != InvalidNode; x0 = t.Parent(x0) {
			for y0 := t.NextSibling(x0); y0 != InvalidNode; y0 = t.NextSibling(y0) {
				if y0 == y || t.isDescendantByWalk(y0, y) {
					return true
				}
			}
		}
		return false
	case Preceding:
		return naiveHolds(t, Following, y, x)
	}
	panic("unknown axis")
}

func TestHoldsAgainstNaive(t *testing.T) {
	trees := []*Tree{
		MustParseSexpr("a"),
		MustParseSexpr("a(b)"),
		MustParseSexpr("a(b c d)"),
		MustParseSexpr("a(b(a c) a(b d))"),
		MustParseSexpr("r(a(b(c(d))) e(f g) h)"),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		trees = append(trees, randomTree(rng, 1+rng.Intn(40), []string{"a", "b"}))
	}
	for ti, tr := range trees {
		for _, a := range AllAxes() {
			for _, x := range tr.Nodes() {
				for _, y := range tr.Nodes() {
					want := naiveHolds(tr, a, x, y)
					if got := tr.Holds(a, x, y); got != want {
						t.Fatalf("tree %d (%s): %v(%d,%d) = %v, want %v", ti, tr, a, x, y, got, want)
					}
				}
			}
		}
	}
}

func TestStepAgreesWithHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 15; i++ {
		tr := randomTree(rng, 1+rng.Intn(50), []string{"a", "b", "c"})
		for _, a := range AllAxes() {
			for _, x := range tr.Nodes() {
				got := tr.Step(a, x)
				// Step must return exactly {y : Holds(a,x,y)} ...
				set := map[NodeID]bool{}
				for _, y := range got {
					if !tr.Holds(a, x, y) {
						t.Fatalf("%v: Step(%d) returned %d but Holds is false", a, x, y)
					}
					if set[y] {
						t.Fatalf("%v: Step(%d) returned %d twice", a, x, y)
					}
					set[y] = true
				}
				want := 0
				for _, y := range tr.Nodes() {
					if tr.Holds(a, x, y) {
						want++
					}
				}
				if len(got) != want {
					t.Fatalf("%v: Step(%d) returned %d nodes, want %d", a, x, len(got), want)
				}
				// ... in document order.
				for j := 1; j < len(got); j++ {
					if tr.Pre(got[j-1]) >= tr.Pre(got[j]) {
						t.Fatalf("%v: Step(%d) not in document order: %v", a, x, got)
					}
				}
				if sc := tr.StepCount(a, x); sc != want {
					t.Fatalf("%v: StepCount(%d) = %d, want %d", a, x, sc, want)
				}
			}
		}
	}
}

func TestStepFuncEarlyStop(t *testing.T) {
	tr := MustParseSexpr("a(b c d e f)")
	count := 0
	tr.StepFunc(Child, tr.Root(), func(NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("StepFunc visited %d nodes after early stop, want 2", count)
	}
}

func TestInverseAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTree(rng, 30, []string{"a", "b"})
	for _, a := range AllAxes() {
		inv := a.Inverse()
		if inv.Inverse() != a {
			t.Errorf("Inverse(Inverse(%v)) = %v", a, inv.Inverse())
		}
		for _, x := range tr.Nodes() {
			for _, y := range tr.Nodes() {
				if tr.Holds(a, x, y) != tr.Holds(inv, y, x) {
					t.Fatalf("%v(%d,%d) != %v(%d,%d)", a, x, y, inv, y, x)
				}
			}
		}
	}
}

func TestAxisStringAndParse(t *testing.T) {
	for _, a := range AllAxes() {
		s := a.String()
		got, err := ParseAxis(s)
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", s, err)
			continue
		}
		if got != a {
			t.Errorf("ParseAxis(%q) = %v, want %v", s, got, a)
		}
	}
	xpathNames := map[string]Axis{
		"descendant":         Descendant,
		"descendant-or-self": DescendantOrSelf,
		"following-sibling":  FollowingSibling,
		"preceding-sibling":  PrecedingSibling,
		"parent":             Parent,
		"ancestor":           Ancestor,
		"following":          Following,
		"preceding":          Preceding,
	}
	for s, want := range xpathNames {
		got, err := ParseAxis(s)
		if err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAxis("bogus"); err == nil {
		t.Errorf("ParseAxis(bogus) should fail")
	}
}

func TestForwardAxes(t *testing.T) {
	for _, a := range ForwardAxes() {
		if !a.IsForward() {
			t.Errorf("%v listed in ForwardAxes but IsForward is false", a)
		}
	}
	if Parent.IsForward() || Ancestor.IsForward() || Preceding.IsForward() {
		t.Errorf("reverse axes must not be forward")
	}
	if !Descendant.IsTransitive() || Child.IsTransitive() || Self.IsTransitive() {
		t.Errorf("IsTransitive wrong")
	}
}

// TestOrderAxisCharacterization checks the two equivalences of Section 2:
//
//	Child+(x,y)    iff  x <pre y  and  y <post x
//	Following(x,y) iff  x <pre y  and  x <post y
//
// plus the definitions of <pre and <post from Child+ and Following.
func TestOrderAxisCharacterization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		tr := randomTree(rng, 1+rng.Intn(40), []string{"a"})
		for _, x := range tr.Nodes() {
			for _, y := range tr.Nodes() {
				pre := tr.Less(PreOrder, x, y)
				post := tr.Less(PostOrder, x, y)
				desc := tr.Holds(Descendant, x, y)
				foll := tr.Holds(Following, x, y)
				if desc != (pre && tr.Less(PostOrder, y, x)) {
					t.Fatalf("Child+ characterization fails at (%d,%d)", x, y)
				}
				if foll != (pre && post) {
					t.Fatalf("Following characterization fails at (%d,%d)", x, y)
				}
				// x <pre y iff Child+(x,y) or Following(x,y)
				if pre != (desc || foll) {
					t.Fatalf("<pre characterization fails at (%d,%d)", x, y)
				}
				// x <post y iff Child+(y,x) or Following(x,y)
				if post != (tr.Holds(Descendant, y, x) || foll) {
					t.Fatalf("<post characterization fails at (%d,%d)", x, y)
				}
			}
		}
	}
}

func TestPairs(t *testing.T) {
	tr := MustParseSexpr("a(b(c) d)")
	childPairs := tr.Pairs(Child)
	if len(childPairs) != 3 {
		t.Errorf("Child pairs = %v", childPairs)
	}
	descPairs := tr.Pairs(Descendant)
	if len(descPairs) != 4 {
		t.Errorf("Descendant pairs = %v", descPairs)
	}
	follPairs := tr.Pairs(Following)
	// b<d, c<d.
	if len(follPairs) != 2 {
		t.Errorf("Following pairs = %v", follPairs)
	}
}

// TestQuickAxisPartition property-checks that for any two distinct nodes x,y
// exactly one of Child+(x,y), Child+(y,x), Following(x,y), Following(y,x)
// holds (the total-order decomposition used in the proof of Theorem 5.1).
func TestQuickAxisPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, size uint8) bool {
		n := int(size%60) + 2
		tr := randomTree(rand.New(rand.NewSource(seed)), n, []string{"a", "b"})
		x := NodeID(rng.Intn(n))
		y := NodeID(rng.Intn(n))
		if x == y {
			return true
		}
		count := 0
		if tr.Holds(Descendant, x, y) {
			count++
		}
		if tr.Holds(Descendant, y, x) {
			count++
		}
		if tr.Holds(Following, x, y) {
			count++
		}
		if tr.Holds(Following, y, x) {
			count++
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrderStrings(t *testing.T) {
	if PreOrder.String() != "<pre" || PostOrder.String() != "<post" || BFLROrder.String() != "<bflr" {
		t.Errorf("Order.String wrong")
	}
	if len(AllOrders()) != 3 {
		t.Errorf("AllOrders wrong")
	}
}
