// Package tree implements unranked, ordered, node-labeled finite trees --
// the data model of the paper "Processing Queries on Tree-Structured Data
// Efficiently" (Koch, PODS 2006), Section 2.
//
// A tree is stored in an arena: every node is identified by a NodeID and all
// per-node attributes live in parallel slices.  The package exposes
//
//   - the navigational relations (axes) Child, Child+, Child*, NextSibling,
//     NextSibling+, NextSibling*, Following and their inverses,
//   - the three total orders <pre, <post and <bflr of Section 2,
//   - the tau+ predicates Root, Leaf, FirstSibling, LastSibling and the
//     binary relations FirstChild and NextSibling used by monadic datalog
//     (Section 3),
//   - multiple labels per node (the tractability results of the paper allow
//     multi-labeled nodes).
//
// All index computations are performed once, when Builder.Build freezes the
// tree; afterwards every axis test is O(1) and every axis enumeration is
// linear in its output.
package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node of a Tree.  NodeIDs are dense: a tree with n
// nodes uses the IDs 0..n-1 in document (pre-) order of insertion.
// InvalidNode is the zero of the "option" convention used throughout.
type NodeID int32

// InvalidNode is returned by navigation functions when the requested node
// does not exist (for example Parent of the root).
const InvalidNode NodeID = -1

// Tree is an immutable unranked ordered labeled tree.  Construct one with a
// Builder, by parsing an XML document (package xmldoc), or with one of the
// generators in package workload.
type Tree struct {
	parent      []NodeID
	firstChild  []NodeID
	lastChild   []NodeID
	nextSibling []NodeID
	prevSibling []NodeID

	labels [][]string // each node may carry several labels
	text   []string   // optional textual content (ignored by Core XPath)

	pre   []int // 1-based preorder index  (document order, <pre)
	post  []int // 1-based postorder index (<post)
	bflr  []int // 1-based breadth-first left-to-right index (<bflr)
	depth []int // root has depth 0
	size  []int // number of nodes in the subtree rooted at the node

	byPre  []NodeID // byPre[i-1]  = node with preorder index i
	byPost []NodeID // byPost[i-1] = node with postorder index i
	byBFLR []NodeID // byBFLR[i-1] = node with bflr index i
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node of the tree, or InvalidNode for an empty tree.
func (t *Tree) Root() NodeID {
	if t.Len() == 0 {
		return InvalidNode
	}
	return 0
}

// valid reports whether n is a node of t.
func (t *Tree) valid(n NodeID) bool { return n >= 0 && int(n) < t.Len() }

// Parent returns the parent of n, or InvalidNode if n is the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.parent[n] }

// FirstChild returns the first (leftmost) child of n, or InvalidNode.
func (t *Tree) FirstChild(n NodeID) NodeID { return t.firstChild[n] }

// LastChild returns the last (rightmost) child of n, or InvalidNode.
func (t *Tree) LastChild(n NodeID) NodeID { return t.lastChild[n] }

// NextSibling returns the right sibling of n, or InvalidNode.
func (t *Tree) NextSibling(n NodeID) NodeID { return t.nextSibling[n] }

// PrevSibling returns the left sibling of n, or InvalidNode.
func (t *Tree) PrevSibling(n NodeID) NodeID { return t.prevSibling[n] }

// Labels returns the labels of n.  The returned slice must not be modified.
func (t *Tree) Labels(n NodeID) []string { return t.labels[n] }

// Label returns the first (primary) label of n, or "" if n is unlabeled.
func (t *Tree) Label(n NodeID) string {
	if len(t.labels[n]) == 0 {
		return ""
	}
	return t.labels[n][0]
}

// HasLabel reports whether Lab_a(n) holds, i.e. node n carries label a.
func (t *Tree) HasLabel(n NodeID, a string) bool {
	for _, l := range t.labels[n] {
		if l == a {
			return true
		}
	}
	return false
}

// Text returns the textual content attached to n ("" if none).
func (t *Tree) Text(n NodeID) string { return t.text[n] }

// Depth returns the depth of n; the root has depth 0.
func (t *Tree) Depth(n NodeID) int { return t.depth[n] }

// Height returns the height of the tree: 1 + max depth, or 0 for the empty
// tree.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d+1 > h {
			h = d + 1
		}
	}
	return h
}

// SubtreeSize returns the number of nodes in the subtree rooted at n
// (including n itself).
func (t *Tree) SubtreeSize(n NodeID) int { return t.size[n] }

// Pre returns the 1-based preorder (document order) index of n.
func (t *Tree) Pre(n NodeID) int { return t.pre[n] }

// Post returns the 1-based postorder index of n.
func (t *Tree) Post(n NodeID) int { return t.post[n] }

// BFLR returns the 1-based breadth-first left-to-right index of n.
func (t *Tree) BFLR(n NodeID) int { return t.bflr[n] }

// NodeAtPre returns the node with preorder index i (1-based), or InvalidNode.
func (t *Tree) NodeAtPre(i int) NodeID {
	if i < 1 || i > t.Len() {
		return InvalidNode
	}
	return t.byPre[i-1]
}

// NodeAtPost returns the node with postorder index i (1-based), or InvalidNode.
func (t *Tree) NodeAtPost(i int) NodeID {
	if i < 1 || i > t.Len() {
		return InvalidNode
	}
	return t.byPost[i-1]
}

// NodeAtBFLR returns the node with bflr index i (1-based), or InvalidNode.
func (t *Tree) NodeAtBFLR(i int) NodeID {
	if i < 1 || i > t.Len() {
		return InvalidNode
	}
	return t.byBFLR[i-1]
}

// Nodes returns all nodes of the tree in document (pre-) order.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, t.Len())
	copy(out, t.byPre)
	return out
}

// PreOrder returns the nodes in document (preorder) order without copying.
// The returned slice is owned by the tree and must not be modified; hot
// evaluator sweeps use it to avoid the per-call allocation of Nodes.
func (t *Tree) PreOrder() []NodeID { return t.byPre }

// Children returns the children of n, left to right.
func (t *Tree) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := t.firstChild[n]; c != InvalidNode; c = t.nextSibling[c] {
		out = append(out, c)
	}
	return out
}

// NumChildren returns the number of children of n.
func (t *Tree) NumChildren(n NodeID) int {
	k := 0
	for c := t.firstChild[n]; c != InvalidNode; c = t.nextSibling[c] {
		k++
	}
	return k
}

// IsRoot reports whether Root(n) holds.
func (t *Tree) IsRoot(n NodeID) bool { return t.parent[n] == InvalidNode }

// IsLeaf reports whether Leaf(n) holds.
func (t *Tree) IsLeaf(n NodeID) bool { return t.firstChild[n] == InvalidNode }

// IsFirstSibling reports whether FirstSibling(n) holds (n has no left sibling).
func (t *Tree) IsFirstSibling(n NodeID) bool { return t.prevSibling[n] == InvalidNode }

// IsLastSibling reports whether LastSibling(n) holds (n has no right sibling).
func (t *Tree) IsLastSibling(n NodeID) bool { return t.nextSibling[n] == InvalidNode }

// IsFirstChildOf reports whether FirstChild(u, v) holds: v is the first child
// of u.
func (t *Tree) IsFirstChildOf(u, v NodeID) bool { return t.firstChild[u] == v && v != InvalidNode }

// LabelAlphabet returns the sorted set of labels occurring in the tree.
func (t *Tree) LabelAlphabet() []string {
	set := map[string]bool{}
	for _, ls := range t.labels {
		for _, l := range ls {
			set[l] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// NodesWithLabel returns, in document order, all nodes carrying label a.
func (t *Tree) NodesWithLabel(a string) []NodeID {
	var out []NodeID
	for _, n := range t.byPre {
		if t.HasLabel(n, a) {
			out = append(out, n)
		}
	}
	return out
}

// Builder incrementally constructs a Tree.  Nodes must be added in document
// order: the parent of a node must have been added before the node itself.
type Builder struct {
	t    Tree
	open bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{open: true} }

// AddRoot adds the root node and returns its id.  It must be the first node
// added.
func (b *Builder) AddRoot(labels ...string) NodeID {
	return b.add(InvalidNode, labels)
}

// AddChild adds a new rightmost child of parent and returns its id.
func (b *Builder) AddChild(parent NodeID, labels ...string) NodeID {
	return b.add(parent, labels)
}

func (b *Builder) add(parent NodeID, labels []string) NodeID {
	if !b.open {
		panic("tree: Builder used after Build")
	}
	t := &b.t
	id := NodeID(len(t.parent))
	if parent == InvalidNode && id != 0 {
		panic("tree: a tree has exactly one root; AddRoot called twice")
	}
	if parent != InvalidNode && !t.valid(parent) {
		panic(fmt.Sprintf("tree: AddChild of unknown parent %d", parent))
	}
	t.parent = append(t.parent, parent)
	t.firstChild = append(t.firstChild, InvalidNode)
	t.lastChild = append(t.lastChild, InvalidNode)
	t.nextSibling = append(t.nextSibling, InvalidNode)
	t.prevSibling = append(t.prevSibling, InvalidNode)
	ls := make([]string, len(labels))
	copy(ls, labels)
	t.labels = append(t.labels, ls)
	t.text = append(t.text, "")
	if parent != InvalidNode {
		if t.lastChild[parent] == InvalidNode {
			t.firstChild[parent] = id
		} else {
			prev := t.lastChild[parent]
			t.nextSibling[prev] = id
			t.prevSibling[id] = prev
		}
		t.lastChild[parent] = id
	}
	return id
}

// AddLabel attaches an additional label to an existing node.
func (b *Builder) AddLabel(n NodeID, label string) {
	if !b.open {
		panic("tree: Builder used after Build")
	}
	if !b.t.valid(n) {
		panic(fmt.Sprintf("tree: AddLabel of unknown node %d", n))
	}
	b.t.labels[n] = append(b.t.labels[n], label)
}

// SetText attaches textual content to an existing node.
func (b *Builder) SetText(n NodeID, text string) {
	if !b.open {
		panic("tree: Builder used after Build")
	}
	if !b.t.valid(n) {
		panic(fmt.Sprintf("tree: SetText of unknown node %d", n))
	}
	b.t.text[n] = text
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.t.parent) }

// Build freezes the builder, computes all orders and indexes and returns the
// tree.  Build returns an error for the empty tree (a tree has at least one
// node).
func (b *Builder) Build() (*Tree, error) {
	if !b.open {
		return nil, errors.New("tree: Build called twice")
	}
	if len(b.t.parent) == 0 {
		return nil, errors.New("tree: cannot build an empty tree")
	}
	b.open = false
	t := &b.t
	t.computeOrders()
	return t, nil
}

// MustBuild is like Build but panics on error; intended for tests and
// examples with statically known shapes.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// computeOrders fills pre, post, bflr, depth, size and the reverse index
// slices in O(n) without recursion (trees may be deep).
func (t *Tree) computeOrders() {
	n := t.Len()
	t.pre = make([]int, n)
	t.post = make([]int, n)
	t.bflr = make([]int, n)
	t.depth = make([]int, n)
	t.size = make([]int, n)
	t.byPre = make([]NodeID, n)
	t.byPost = make([]NodeID, n)
	t.byBFLR = make([]NodeID, n)

	// Iterative depth-first traversal computing pre and post order.
	preCtr, postCtr := 0, 0
	type frame struct {
		node  NodeID
		child NodeID // next child to visit
	}
	stack := make([]frame, 0, 64)
	root := t.Root()
	t.depth[root] = 0
	preCtr++
	t.pre[root] = preCtr
	t.byPre[preCtr-1] = root
	stack = append(stack, frame{root, t.firstChild[root]})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == InvalidNode {
			// All children visited: emit postorder, compute subtree size.
			postCtr++
			t.post[top.node] = postCtr
			t.byPost[postCtr-1] = top.node
			sz := 1
			for c := t.firstChild[top.node]; c != InvalidNode; c = t.nextSibling[c] {
				sz += t.size[c]
			}
			t.size[top.node] = sz
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = t.nextSibling[c]
		t.depth[c] = t.depth[top.node] + 1
		preCtr++
		t.pre[c] = preCtr
		t.byPre[preCtr-1] = c
		stack = append(stack, frame{c, t.firstChild[c]})
	}

	// Breadth-first left-to-right order.
	queue := make([]NodeID, 0, n)
	queue = append(queue, root)
	ctr := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ctr++
		t.bflr[u] = ctr
		t.byBFLR[ctr-1] = u
		for c := t.firstChild[u]; c != InvalidNode; c = t.nextSibling[c] {
			queue = append(queue, c)
		}
	}
}

// String renders the tree as a single-line nested-parenthesis expression,
// e.g. "a(b(a c) a(b d))" for the tree of Figure 2 of the paper.
func (t *Tree) String() string {
	var sb strings.Builder
	t.writeNode(&sb, t.Root())
	return sb.String()
}

func (t *Tree) writeNode(sb *strings.Builder, n NodeID) {
	if len(t.labels[n]) == 0 {
		sb.WriteString("_")
	} else {
		sb.WriteString(strings.Join(t.labels[n], "+"))
	}
	if t.firstChild[n] == InvalidNode {
		return
	}
	sb.WriteString("(")
	first := true
	for c := t.firstChild[n]; c != InvalidNode; c = t.nextSibling[c] {
		if !first {
			sb.WriteString(" ")
		}
		first = false
		t.writeNode(sb, c)
	}
	sb.WriteString(")")
}

// Indented renders the tree as an indented multi-line listing showing, for
// every node, its label(s), preorder and postorder index -- the format used
// in Figure 2 (a) of the paper ("pre:post:label").
func (t *Tree) Indented() string {
	var sb strings.Builder
	for _, n := range t.byPre {
		sb.WriteString(strings.Repeat("  ", t.depth[n]))
		fmt.Fprintf(&sb, "%d:%d:%s\n", t.pre[n], t.post[n], t.Label(n))
	}
	return sb.String()
}

// DOT renders the tree in Graphviz dot syntax (child edges solid, next-sibling
// edges dashed), mirroring Figure 1 (b) of the paper.
func (t *Tree) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph tree {\n  node [shape=circle];\n")
	for _, n := range t.byPre {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n, t.Label(n))
	}
	for _, n := range t.byPre {
		if fc := t.firstChild[n]; fc != InvalidNode {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"FirstChild\"];\n", n, fc)
		}
		if ns := t.nextSibling[n]; ns != InvalidNode {
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, label=\"NextSibling\"];\n", n, ns)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ParseSexpr parses the nested-parenthesis syntax emitted by String:
//
//	tree    := label [ "(" tree { " " tree } ")" ]
//	label   := one or more labels joined by "+", or "_" for no label
//
// Example: "a(b(a c) a(b d))".
func ParseSexpr(s string) (*Tree, error) {
	p := &sexprParser{input: s}
	b := NewBuilder()
	p.skipSpace()
	if err := p.parseNode(b, InvalidNode); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("tree: trailing input at offset %d", p.pos)
	}
	return b.Build()
}

// MustParseSexpr is like ParseSexpr but panics on error.
func MustParseSexpr(s string) *Tree {
	t, err := ParseSexpr(s)
	if err != nil {
		panic(err)
	}
	return t
}

type sexprParser struct {
	input string
	pos   int
}

func (p *sexprParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *sexprParser) parseNode(b *Builder, parent NodeID) error {
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("() \t\n", rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return fmt.Errorf("tree: expected label at offset %d", p.pos)
	}
	labelText := p.input[start:p.pos]
	var labels []string
	if labelText != "_" {
		labels = strings.Split(labelText, "+")
	}
	var id NodeID
	if parent == InvalidNode {
		id = b.AddRoot(labels...)
	} else {
		id = b.AddChild(parent, labels...)
	}
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == '(' {
		p.pos++ // consume '('
		for {
			p.skipSpace()
			if p.pos >= len(p.input) {
				return errors.New("tree: unterminated '('")
			}
			if p.input[p.pos] == ')' {
				p.pos++
				break
			}
			if err := p.parseNode(b, id); err != nil {
				return err
			}
		}
	}
	return nil
}
