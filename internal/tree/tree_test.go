package tree

import (
	"math/rand"
	"strings"
	"testing"
)

// figure1Tree builds the 6-node tree of Figure 1 of the paper:
//
//	n1
//	├── n2
//	├── n3
//	│   ├── n5
//	│   └── n6
//	└── n4
func figure1Tree(t *testing.T) (*Tree, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	ids := map[string]NodeID{}
	ids["n1"] = b.AddRoot("n1")
	ids["n2"] = b.AddChild(ids["n1"], "n2")
	ids["n3"] = b.AddChild(ids["n1"], "n3")
	ids["n4"] = b.AddChild(ids["n1"], "n4")
	ids["n5"] = b.AddChild(ids["n3"], "n5")
	ids["n6"] = b.AddChild(ids["n3"], "n6")
	return b.MustBuild(), ids
}

// figure2Tree builds the 7-node tree of Figure 2 (a): labels with pre:post
// indices 1:7:a, 2:3:b, 3:1:a, 4:2:c, 5:6:a, 6:4:b, 7:5:d.
func figure2Tree(t *testing.T) *Tree {
	t.Helper()
	return MustParseSexpr("a(b(a c) a(b d))")
}

func TestBuilderBasics(t *testing.T) {
	tr, ids := figure1Tree(t)
	if got, want := tr.Len(), 6; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if tr.Root() != ids["n1"] {
		t.Errorf("Root = %d, want %d", tr.Root(), ids["n1"])
	}
	if tr.Parent(ids["n5"]) != ids["n3"] {
		t.Errorf("Parent(n5) = %d, want n3", tr.Parent(ids["n5"]))
	}
	if tr.FirstChild(ids["n1"]) != ids["n2"] {
		t.Errorf("FirstChild(n1) = %d, want n2", tr.FirstChild(ids["n1"]))
	}
	if tr.LastChild(ids["n1"]) != ids["n4"] {
		t.Errorf("LastChild(n1) = %d, want n4", tr.LastChild(ids["n1"]))
	}
	if tr.NextSibling(ids["n2"]) != ids["n3"] {
		t.Errorf("NextSibling(n2) = %d, want n3", tr.NextSibling(ids["n2"]))
	}
	if tr.PrevSibling(ids["n4"]) != ids["n3"] {
		t.Errorf("PrevSibling(n4) = %d, want n3", tr.PrevSibling(ids["n4"]))
	}
	if tr.NextSibling(ids["n4"]) != InvalidNode {
		t.Errorf("NextSibling(n4) should be invalid")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Errorf("Build of empty tree should fail")
	}
	b2 := NewBuilder()
	b2.AddRoot("a")
	if _, err := b2.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := b2.Build(); err == nil {
		t.Errorf("second Build should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("AddRoot twice should panic")
			}
		}()
		b3 := NewBuilder()
		b3.AddRoot("a")
		b3.AddRoot("b")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("AddChild of unknown parent should panic")
			}
		}()
		b4 := NewBuilder()
		b4.AddRoot("a")
		b4.AddChild(77, "b")
	}()
}

func TestFigure2PrePostIndexes(t *testing.T) {
	tr := figure2Tree(t)
	// The paper's Figure 2 (b) XASR rows: (pre, post, parent_pre, label).
	want := []struct {
		pre, post, parentPre int
		label                string
	}{
		{1, 7, 0, "a"},
		{2, 3, 1, "b"},
		{3, 1, 2, "a"},
		{4, 2, 2, "c"},
		{5, 6, 1, "a"},
		{6, 4, 5, "b"},
		{7, 5, 5, "d"},
	}
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(want))
	}
	for _, w := range want {
		n := tr.NodeAtPre(w.pre)
		if n == InvalidNode {
			t.Fatalf("no node at pre %d", w.pre)
		}
		if tr.Post(n) != w.post {
			t.Errorf("post(%d) = %d, want %d", w.pre, tr.Post(n), w.post)
		}
		if tr.parentPre(n) != w.parentPre {
			t.Errorf("parentPre(%d) = %d, want %d", w.pre, tr.parentPre(n), w.parentPre)
		}
		if tr.Label(n) != w.label {
			t.Errorf("label(%d) = %q, want %q", w.pre, tr.Label(n), w.label)
		}
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder()
	r := b.AddRoot("a", "item")
	c := b.AddChild(r, "b")
	b.AddLabel(c, "keyword")
	b.SetText(c, "hello")
	tr := b.MustBuild()
	if !tr.HasLabel(r, "a") || !tr.HasLabel(r, "item") {
		t.Errorf("root should carry labels a and item")
	}
	if tr.HasLabel(r, "b") {
		t.Errorf("root should not carry label b")
	}
	if !tr.HasLabel(c, "keyword") {
		t.Errorf("AddLabel did not attach label")
	}
	if tr.Text(c) != "hello" {
		t.Errorf("Text = %q, want hello", tr.Text(c))
	}
	if tr.Label(c) != "b" {
		t.Errorf("primary label = %q, want b", tr.Label(c))
	}
	alpha := tr.LabelAlphabet()
	if strings.Join(alpha, ",") != "a,b,item,keyword" {
		t.Errorf("LabelAlphabet = %v", alpha)
	}
	if got := tr.NodesWithLabel("a"); len(got) != 1 || got[0] != r {
		t.Errorf("NodesWithLabel(a) = %v", got)
	}
	if got := tr.NodesWithLabel("zzz"); len(got) != 0 {
		t.Errorf("NodesWithLabel(zzz) = %v, want empty", got)
	}
}

func TestUnlabeledNodeLabel(t *testing.T) {
	b := NewBuilder()
	r := b.AddRoot()
	tr := b.MustBuild()
	if tr.Label(r) != "" {
		t.Errorf("Label of unlabeled node = %q, want empty", tr.Label(r))
	}
	if tr.String() != "_" {
		t.Errorf("String = %q, want _", tr.String())
	}
}

func TestPredicates(t *testing.T) {
	tr, ids := figure1Tree(t)
	if !tr.IsRoot(ids["n1"]) || tr.IsRoot(ids["n2"]) {
		t.Errorf("IsRoot wrong")
	}
	if !tr.IsLeaf(ids["n2"]) || tr.IsLeaf(ids["n3"]) {
		t.Errorf("IsLeaf wrong")
	}
	if !tr.IsFirstSibling(ids["n2"]) || tr.IsFirstSibling(ids["n3"]) {
		t.Errorf("IsFirstSibling wrong")
	}
	if !tr.IsLastSibling(ids["n4"]) || tr.IsLastSibling(ids["n3"]) {
		t.Errorf("IsLastSibling wrong")
	}
	if !tr.IsFirstChildOf(ids["n1"], ids["n2"]) {
		t.Errorf("FirstChild(n1, n2) should hold")
	}
	if tr.IsFirstChildOf(ids["n1"], ids["n3"]) {
		t.Errorf("FirstChild(n1, n3) should not hold")
	}
	if tr.IsFirstChildOf(ids["n2"], InvalidNode) {
		t.Errorf("FirstChild(n2, invalid) should not hold")
	}
}

func TestChildrenAndCounts(t *testing.T) {
	tr, ids := figure1Tree(t)
	kids := tr.Children(ids["n1"])
	if len(kids) != 3 || kids[0] != ids["n2"] || kids[1] != ids["n3"] || kids[2] != ids["n4"] {
		t.Errorf("Children(n1) = %v", kids)
	}
	if tr.NumChildren(ids["n1"]) != 3 || tr.NumChildren(ids["n2"]) != 0 {
		t.Errorf("NumChildren wrong")
	}
	if tr.SubtreeSize(ids["n3"]) != 3 {
		t.Errorf("SubtreeSize(n3) = %d, want 3", tr.SubtreeSize(ids["n3"]))
	}
	if tr.Height() != 3 {
		t.Errorf("Height = %d, want 3", tr.Height())
	}
	if tr.Depth(ids["n5"]) != 2 {
		t.Errorf("Depth(n5) = %d, want 2", tr.Depth(ids["n5"]))
	}
}

func TestOrders(t *testing.T) {
	tr, ids := figure1Tree(t)
	// Preorder: n1 n2 n3 n5 n6 n4.
	wantPre := []string{"n1", "n2", "n3", "n5", "n6", "n4"}
	for i, name := range wantPre {
		if got := tr.NodeAtPre(i + 1); got != ids[name] {
			t.Errorf("NodeAtPre(%d) = %v, want %s", i+1, got, name)
		}
	}
	// Postorder: n2 n5 n6 n3 n4 n1.
	wantPost := []string{"n2", "n5", "n6", "n3", "n4", "n1"}
	for i, name := range wantPost {
		if got := tr.NodeAtPost(i + 1); got != ids[name] {
			t.Errorf("NodeAtPost(%d) = %v, want %s", i+1, got, name)
		}
	}
	// BFLR: n1 n2 n3 n4 n5 n6.
	wantBFLR := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	for i, name := range wantBFLR {
		if got := tr.NodeAtBFLR(i + 1); got != ids[name] {
			t.Errorf("NodeAtBFLR(%d) = %v, want %s", i+1, got, name)
		}
	}
	if tr.NodeAtPre(0) != InvalidNode || tr.NodeAtPre(7) != InvalidNode {
		t.Errorf("NodeAtPre out of range should be invalid")
	}
	if tr.NodeAtPost(100) != InvalidNode || tr.NodeAtBFLR(-1) != InvalidNode {
		t.Errorf("NodeAt* out of range should be invalid")
	}
	if !tr.Less(PreOrder, ids["n3"], ids["n4"]) {
		t.Errorf("n3 <pre n4 should hold")
	}
	if !tr.Less(PostOrder, ids["n3"], ids["n1"]) {
		t.Errorf("n3 <post n1 should hold")
	}
	if !tr.Less(BFLROrder, ids["n4"], ids["n5"]) {
		t.Errorf("n4 <bflr n5 should hold")
	}
	inOrder := tr.NodesInOrder(PostOrder)
	if inOrder[0] != ids["n2"] || inOrder[5] != ids["n1"] {
		t.Errorf("NodesInOrder(post) = %v", inOrder)
	}
}

func TestNodesDocumentOrder(t *testing.T) {
	tr := figure2Tree(t)
	nodes := tr.Nodes()
	if len(nodes) != tr.Len() {
		t.Fatalf("Nodes len = %d", len(nodes))
	}
	for i, n := range nodes {
		if tr.Pre(n) != i+1 {
			t.Errorf("Nodes()[%d] has pre %d", i, tr.Pre(n))
		}
	}
}

func TestStringAndSexprRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b c d)",
		"a(b(a c) a(b d))",
		"x(y(z(w)))",
		"r(a+b(c) _)",
	}
	for _, s := range cases {
		tr, err := ParseSexpr(s)
		if err != nil {
			t.Fatalf("ParseSexpr(%q): %v", s, err)
		}
		if got := tr.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", s, err)
		}
	}
}

func TestParseSexprErrors(t *testing.T) {
	bad := []string{"", "(", "a(", "a(b", "a)b", "a b", "a()x"}
	for _, s := range bad {
		if _, err := ParseSexpr(s); err == nil {
			t.Errorf("ParseSexpr(%q) should fail", s)
		}
	}
}

func TestIndentedAndDOT(t *testing.T) {
	tr := figure2Tree(t)
	ind := tr.Indented()
	if !strings.Contains(ind, "1:7:a") || !strings.Contains(ind, "7:5:d") {
		t.Errorf("Indented output missing pre:post:label rows:\n%s", ind)
	}
	dot := tr.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "FirstChild") || !strings.Contains(dot, "NextSibling") {
		t.Errorf("DOT output incomplete:\n%s", dot)
	}
}

func TestEqual(t *testing.T) {
	a := MustParseSexpr("a(b c)")
	b := MustParseSexpr("a(b c)")
	c := MustParseSexpr("a(c b)")
	d := MustParseSexpr("a(b c d)")
	if !Equal(a, b) {
		t.Errorf("identical trees not Equal")
	}
	if Equal(a, c) {
		t.Errorf("differently-labeled trees Equal")
	}
	if Equal(a, d) {
		t.Errorf("differently-sized trees Equal")
	}
}

// randomTree builds a random tree with n nodes over the given alphabet.
func randomTree(rng *rand.Rand, n int, alphabet []string) *Tree {
	b := NewBuilder()
	b.AddRoot(alphabet[rng.Intn(len(alphabet))])
	for i := 1; i < n; i++ {
		parent := NodeID(rng.Intn(i))
		b.AddChild(parent, alphabet[rng.Intn(len(alphabet))])
	}
	return b.MustBuild()
}

func TestValidateRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []string{"a", "b", "c"}
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 1+rng.Intn(60), alphabet)
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree %d invalid: %v\n%s", i, err, tr)
		}
	}
}

func TestDeepTreeNoStackOverflow(t *testing.T) {
	// A path of 200k nodes: computeOrders must not recurse.
	b := NewBuilder()
	prev := b.AddRoot("a")
	const n = 200_000
	for i := 1; i < n; i++ {
		prev = b.AddChild(prev, "a")
	}
	tr := b.MustBuild()
	if tr.Height() != n {
		t.Errorf("Height = %d, want %d", tr.Height(), n)
	}
	leaf := tr.NodeAtPre(n)
	if tr.Post(leaf) != 1 {
		t.Errorf("deep leaf post = %d, want 1", tr.Post(leaf))
	}
	if tr.StepCount(Ancestor, leaf) != n-1 {
		t.Errorf("ancestor count = %d", tr.StepCount(Ancestor, leaf))
	}
}
