package tree

import "fmt"

// Axis identifies one of the binary tree navigation relations ("axes",
// Section 2 of the paper).  The forward axes are Child, Child+ (Descendant),
// Child* (Descendant-or-self), NextSibling, NextSibling+ (Following-Sibling),
// NextSibling* and Following; every axis has an inverse obtained with
// Inverse.
type Axis int

const (
	// Self relates each node to itself.
	Self Axis = iota
	// Child relates a node to each of its children.
	Child
	// Descendant is Child+, the transitive closure of Child.
	Descendant
	// DescendantOrSelf is Child*, the reflexive-transitive closure of Child.
	DescendantOrSelf
	// Parent is the inverse of Child.
	Parent
	// Ancestor is the inverse of Descendant.
	Ancestor
	// AncestorOrSelf is the inverse of DescendantOrSelf.
	AncestorOrSelf
	// NextSiblingAxis relates a node to its immediate right sibling.
	NextSiblingAxis
	// FollowingSibling is NextSibling+, the transitive closure of NextSibling.
	FollowingSibling
	// FollowingSiblingOrSelf is NextSibling*.
	FollowingSiblingOrSelf
	// PrevSiblingAxis is the inverse of NextSiblingAxis.
	PrevSiblingAxis
	// PrecedingSibling is the inverse of FollowingSibling.
	PrecedingSibling
	// PrecedingSiblingOrSelf is the inverse of FollowingSiblingOrSelf.
	PrecedingSiblingOrSelf
	// Following relates x to y iff some ancestor-or-self of x has a following
	// sibling that is an ancestor-or-self of y (x entirely precedes y and y is
	// not a descendant of x).
	Following
	// Preceding is the inverse of Following.
	Preceding

	numAxes
)

var axisNames = [...]string{
	Self:                   "Self",
	Child:                  "Child",
	Descendant:             "Child+",
	DescendantOrSelf:       "Child*",
	Parent:                 "Parent",
	Ancestor:               "Ancestor",
	AncestorOrSelf:         "Ancestor-or-self",
	NextSiblingAxis:        "NextSibling",
	FollowingSibling:       "NextSibling+",
	FollowingSiblingOrSelf: "NextSibling*",
	PrevSiblingAxis:        "PrevSibling",
	PrecedingSibling:       "NextSibling+^-1",
	PrecedingSiblingOrSelf: "NextSibling*^-1",
	Following:              "Following",
	Preceding:              "Preceding",
}

// String returns the name of the axis in the notation of the paper
// (e.g. "Child+", "NextSibling*", "Following").
func (a Axis) String() string {
	if a < 0 || int(a) >= len(axisNames) {
		return fmt.Sprintf("Axis(%d)", int(a))
	}
	return axisNames[a]
}

// AllAxes returns all axes supported by the package.
func AllAxes() []Axis {
	out := make([]Axis, 0, numAxes)
	for a := Axis(0); a < numAxes; a++ {
		out = append(out, a)
	}
	return out
}

// ForwardAxes returns the forward axes of the paper's Core XPath grammar:
// Self, Child, Child+, Child*, NextSibling, NextSibling+, NextSibling*, and
// Following.  A query using only these axes can be evaluated in a single
// left-to-right pass over the document (Section 5).
func ForwardAxes() []Axis {
	return []Axis{Self, Child, Descendant, DescendantOrSelf,
		NextSiblingAxis, FollowingSibling, FollowingSiblingOrSelf, Following}
}

// ParseAxis parses an axis name.  Both the paper's notation ("Child+",
// "NextSibling*") and the XPath-style names ("descendant", "following-sibling")
// are accepted, case-insensitively for the latter.
func ParseAxis(s string) (Axis, error) {
	switch s {
	case "Self", "self":
		return Self, nil
	case "Child", "child":
		return Child, nil
	case "Child+", "Descendant", "descendant":
		return Descendant, nil
	case "Child*", "Descendant-or-self", "descendant-or-self":
		return DescendantOrSelf, nil
	case "Parent", "parent":
		return Parent, nil
	case "Ancestor", "ancestor":
		return Ancestor, nil
	case "Ancestor-or-self", "ancestor-or-self":
		return AncestorOrSelf, nil
	case "NextSibling", "next-sibling":
		return NextSiblingAxis, nil
	case "NextSibling+", "Following-Sibling", "following-sibling":
		return FollowingSibling, nil
	case "NextSibling*", "following-sibling-or-self":
		return FollowingSiblingOrSelf, nil
	case "PrevSibling", "previous-sibling":
		return PrevSiblingAxis, nil
	case "NextSibling+^-1", "Preceding-Sibling", "preceding-sibling":
		return PrecedingSibling, nil
	case "NextSibling*^-1", "preceding-sibling-or-self":
		return PrecedingSiblingOrSelf, nil
	case "Following", "following":
		return Following, nil
	case "Preceding", "preceding":
		return Preceding, nil
	}
	return Self, fmt.Errorf("tree: unknown axis %q", s)
}

// Inverse returns the inverse axis: Inverse(a).Holds(t, x, y) iff
// a.Holds(t, y, x).
func (a Axis) Inverse() Axis {
	switch a {
	case Self:
		return Self
	case Child:
		return Parent
	case Descendant:
		return Ancestor
	case DescendantOrSelf:
		return AncestorOrSelf
	case Parent:
		return Child
	case Ancestor:
		return Descendant
	case AncestorOrSelf:
		return DescendantOrSelf
	case NextSiblingAxis:
		return PrevSiblingAxis
	case FollowingSibling:
		return PrecedingSibling
	case FollowingSiblingOrSelf:
		return PrecedingSiblingOrSelf
	case PrevSiblingAxis:
		return NextSiblingAxis
	case PrecedingSibling:
		return FollowingSibling
	case PrecedingSiblingOrSelf:
		return FollowingSiblingOrSelf
	case Following:
		return Preceding
	case Preceding:
		return Following
	}
	panic(fmt.Sprintf("tree: Inverse of unknown axis %d", int(a)))
}

// IsForward reports whether a is one of the forward axes.
func (a Axis) IsForward() bool {
	switch a {
	case Self, Child, Descendant, DescendantOrSelf,
		NextSiblingAxis, FollowingSibling, FollowingSiblingOrSelf, Following:
		return true
	}
	return false
}

// IsTransitive reports whether the axis is a transitive (or
// reflexive-transitive) closure axis.  The PTime-hardness of Core XPath
// depends on the presence of such axes (Section 7).
func (a Axis) IsTransitive() bool {
	switch a {
	case Descendant, DescendantOrSelf, Ancestor, AncestorOrSelf,
		FollowingSibling, FollowingSiblingOrSelf, PrecedingSibling, PrecedingSiblingOrSelf,
		Following, Preceding:
		return true
	}
	return false
}

// Holds reports whether the axis relation a(x, y) holds in t.  Thanks to the
// pre/post/bflr indexes every test is O(1) except Child and NextSibling-style
// local axes, which are O(1) by pointer comparison anyway.
func (t *Tree) Holds(a Axis, x, y NodeID) bool {
	switch a {
	case Self:
		return x == y
	case Child:
		return t.parent[y] == x
	case Parent:
		return t.parent[x] == y
	case Descendant:
		// x is a proper ancestor of y:  x <pre y  and  y <post x.
		return t.pre[x] < t.pre[y] && t.post[y] < t.post[x]
	case Ancestor:
		return t.pre[y] < t.pre[x] && t.post[x] < t.post[y]
	case DescendantOrSelf:
		return x == y || (t.pre[x] < t.pre[y] && t.post[y] < t.post[x])
	case AncestorOrSelf:
		return x == y || (t.pre[y] < t.pre[x] && t.post[x] < t.post[y])
	case NextSiblingAxis:
		return t.nextSibling[x] == y
	case PrevSiblingAxis:
		return t.prevSibling[x] == y
	case FollowingSibling:
		return t.parent[x] != InvalidNode && t.parent[x] == t.parent[y] && t.pre[x] < t.pre[y]
	case PrecedingSibling:
		return t.parent[x] != InvalidNode && t.parent[x] == t.parent[y] && t.pre[y] < t.pre[x]
	case FollowingSiblingOrSelf:
		return x == y || (t.parent[x] != InvalidNode && t.parent[x] == t.parent[y] && t.pre[x] < t.pre[y])
	case PrecedingSiblingOrSelf:
		return x == y || (t.parent[x] != InvalidNode && t.parent[x] == t.parent[y] && t.pre[y] < t.pre[x])
	case Following:
		// x <pre y and x <post y (x entirely precedes y).
		return t.pre[x] < t.pre[y] && t.post[x] < t.post[y]
	case Preceding:
		return t.pre[y] < t.pre[x] && t.post[y] < t.post[x]
	}
	panic(fmt.Sprintf("tree: Holds of unknown axis %d", int(a)))
}

// Step returns, in document order, all nodes y such that a(n, y) holds.
// This is the node-set semantics of a single XPath location step.
func (t *Tree) Step(a Axis, n NodeID) []NodeID {
	var out []NodeID
	t.StepFunc(a, n, func(y NodeID) bool {
		out = append(out, y)
		return true
	})
	return out
}

// StepFunc calls yield for each node y with a(n, y), in document order,
// stopping early when yield returns false.  It avoids allocating result
// slices in inner loops of the evaluators.
func (t *Tree) StepFunc(a Axis, n NodeID, yield func(NodeID) bool) {
	switch a {
	case Self:
		yield(n)
	case Child:
		for c := t.firstChild[n]; c != InvalidNode; c = t.nextSibling[c] {
			if !yield(c) {
				return
			}
		}
	case Parent:
		if p := t.parent[n]; p != InvalidNode {
			yield(p)
		}
	case Descendant, DescendantOrSelf:
		// The descendants of n are exactly the nodes with preorder index in
		// (pre(n), pre(n)+size(n)-1]; byPre gives them in document order.
		start := t.pre[n] // 1-based
		if a == Descendant {
			start++
		}
		end := t.pre[n] + t.size[n] - 1
		for i := start; i <= end; i++ {
			if !yield(t.byPre[i-1]) {
				return
			}
		}
	case Ancestor, AncestorOrSelf:
		// Yield ancestors in document order (root first).
		var anc []NodeID
		for p := t.parent[n]; p != InvalidNode; p = t.parent[p] {
			anc = append(anc, p)
		}
		for i := len(anc) - 1; i >= 0; i-- {
			if !yield(anc[i]) {
				return
			}
		}
		if a == AncestorOrSelf {
			yield(n)
		}
	case NextSiblingAxis:
		if s := t.nextSibling[n]; s != InvalidNode {
			yield(s)
		}
	case PrevSiblingAxis:
		if s := t.prevSibling[n]; s != InvalidNode {
			yield(s)
		}
	case FollowingSibling, FollowingSiblingOrSelf:
		if a == FollowingSiblingOrSelf {
			if !yield(n) {
				return
			}
		}
		for s := t.nextSibling[n]; s != InvalidNode; s = t.nextSibling[s] {
			if !yield(s) {
				return
			}
		}
	case PrecedingSibling, PrecedingSiblingOrSelf:
		// Document order for preceding siblings is left-to-right, i.e. from
		// the first sibling up to (but excluding) n.
		var sibs []NodeID
		for s := t.prevSibling[n]; s != InvalidNode; s = t.prevSibling[s] {
			sibs = append(sibs, s)
		}
		for i := len(sibs) - 1; i >= 0; i-- {
			if !yield(sibs[i]) {
				return
			}
		}
		if a == PrecedingSiblingOrSelf {
			yield(n)
		}
	case Following:
		// Nodes y with pre(n) < pre(y) and post(n) < post(y): the nodes after
		// the subtree of n in document order.
		start := t.pre[n] + t.size[n]
		for i := start; i <= t.Len(); i++ {
			if !yield(t.byPre[i-1]) {
				return
			}
		}
	case Preceding:
		// Nodes y with pre(y) < pre(n) and post(y) < post(n): nodes strictly
		// before n in document order that are not ancestors of n.
		for i := 1; i < t.pre[n]; i++ {
			y := t.byPre[i-1]
			if t.post[y] < t.post[n] {
				if !yield(y) {
					return
				}
			}
		}
	default:
		panic(fmt.Sprintf("tree: Step of unknown axis %d", int(a)))
	}
}

// StepCount returns |{y : a(n,y)}| without materializing the node set.
func (t *Tree) StepCount(a Axis, n NodeID) int {
	switch a {
	case Self:
		return 1
	case Descendant:
		return t.size[n] - 1
	case DescendantOrSelf:
		return t.size[n]
	case Ancestor:
		return t.depth[n]
	case AncestorOrSelf:
		return t.depth[n] + 1
	case Following:
		return t.Len() - (t.pre[n] + t.size[n] - 1)
	}
	k := 0
	t.StepFunc(a, n, func(NodeID) bool { k++; return true })
	return k
}

// Pairs returns all pairs (x, y) with a(x, y), in lexicographic document
// order of (x, y).  Intended for tests and for materializing axis relations
// into the relational store; cost is proportional to the output.
func (t *Tree) Pairs(a Axis) [][2]NodeID {
	var out [][2]NodeID
	for _, x := range t.byPre {
		t.StepFunc(a, x, func(y NodeID) bool {
			out = append(out, [2]NodeID{x, y})
			return true
		})
	}
	return out
}

// Order identifies one of the three total orders on tree nodes studied in
// Section 2 of the paper.
type Order int

const (
	// PreOrder is <pre, document order.
	PreOrder Order = iota
	// PostOrder is <post.
	PostOrder
	// BFLROrder is <bflr, breadth-first left-to-right order.
	BFLROrder

	numOrders
)

// String returns the conventional name of the order.
func (o Order) String() string {
	switch o {
	case PreOrder:
		return "<pre"
	case PostOrder:
		return "<post"
	case BFLROrder:
		return "<bflr"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// AllOrders returns the three orders <pre, <post, <bflr.
func AllOrders() []Order { return []Order{PreOrder, PostOrder, BFLROrder} }

// Index returns the 1-based index of n in order o.
func (t *Tree) Index(o Order, n NodeID) int {
	switch o {
	case PreOrder:
		return t.pre[n]
	case PostOrder:
		return t.post[n]
	case BFLROrder:
		return t.bflr[n]
	}
	panic(fmt.Sprintf("tree: Index of unknown order %d", int(o)))
}

// Less reports whether x comes strictly before y in order o.
func (t *Tree) Less(o Order, x, y NodeID) bool {
	return t.Index(o, x) < t.Index(o, y)
}

// NodesInOrder returns all nodes sorted by order o (ascending).
func (t *Tree) NodesInOrder(o Order) []NodeID {
	var src []NodeID
	switch o {
	case PreOrder:
		src = t.byPre
	case PostOrder:
		src = t.byPost
	case BFLROrder:
		src = t.byBFLR
	default:
		panic(fmt.Sprintf("tree: NodesInOrder of unknown order %d", int(o)))
	}
	out := make([]NodeID, len(src))
	copy(out, src)
	return out
}
