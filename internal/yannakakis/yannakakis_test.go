package yannakakis

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/tree"
	"repro/internal/workload"
)

func paperTree() *tree.Tree { return tree.MustParseSexpr("a(b(a c) a(b d))") }

func TestUnaryQueryMatchesNaive(t *testing.T) {
	tr := paperTree()
	q := cq.MustParse("Q(x) :- Lab[a](x), Child+(x, y), Lab[d](y).")
	got, err := Evaluate(q, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := cq.EvaluateNaive(q, tr)
	if !cq.AnswersEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBooleanQueries(t *testing.T) {
	tr := paperTree()
	yes := cq.MustParse("Q :- Lab[b](x), Child(x, y), Lab[c](y).")
	sat, err := Satisfiable(yes, tr)
	if err != nil || !sat {
		t.Errorf("query should be satisfiable: %v", err)
	}
	no := cq.MustParse("Q :- Lab[d](x), Child(x, y).")
	sat, err = Satisfiable(no, tr)
	if err != nil || sat {
		t.Errorf("query should be unsatisfiable: %v", err)
	}
	// Empty-body query.
	trueQ := cq.MustParse("Q :- true.")
	ans, err := Evaluate(trueQ, tr)
	if err != nil || len(ans) != 1 {
		t.Errorf("true query: %v %v", ans, err)
	}
}

func TestBinaryAndTernaryQueries(t *testing.T) {
	tr := paperTree()
	q2 := cq.MustParse("Q(x, y) :- Lab[a](x), Child(x, y), Lab[b](y).")
	got, err := Evaluate(q2, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !cq.AnswersEqual(got, cq.EvaluateNaive(q2, tr)) {
		t.Errorf("binary query mismatch")
	}
	q3 := cq.MustParse("Q(x, y, z) :- Child(x, y), Child(x, z), Lab[b](y), Lab[a](z).")
	got, err = Evaluate(q3, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !cq.AnswersEqual(got, cq.EvaluateNaive(q3, tr)) {
		t.Errorf("ternary query mismatch: %v vs %v", got, cq.EvaluateNaive(q3, tr))
	}
}

func TestDisconnectedQuery(t *testing.T) {
	tr := paperTree()
	q := cq.MustParse("Q(x, y) :- Lab[c](x), Lab[d](y).")
	got, err := Evaluate(q, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !cq.AnswersEqual(got, cq.EvaluateNaive(q, tr)) {
		t.Errorf("disconnected query mismatch")
	}
	// Disconnected Boolean component that fails must make everything empty.
	q2 := cq.MustParse("Q(x) :- Lab[c](x), Lab[nonexistent](y).")
	got, err = Evaluate(q2, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("query with failing disconnected component should have no answers, got %v", got)
	}
}

func TestSelfLoopAtom(t *testing.T) {
	tr := paperTree()
	// Child*(x, x) holds for every node; with a label it selects that label.
	q := cq.MustParse("Q(x) :- Child*(x, x), Lab[b](x).")
	got, err := Evaluate(q, tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("answers = %v, want the two b nodes", got)
	}
}

func TestCyclicQueryRejected(t *testing.T) {
	tr := paperTree()
	q := cq.MustParse("Q :- Child(x, y), Child(y, z), Child+(x, z).")
	if _, err := Evaluate(q, tr); err != ErrCyclic {
		t.Errorf("cyclic query error = %v, want ErrCyclic", err)
	}
}

func TestOrderAtomsRejected(t *testing.T) {
	tr := paperTree()
	q := cq.MustParse("Q :- Lab[b](x), Lab[b](y), x <pre y.")
	if _, err := Evaluate(q, tr); err != ErrOrderAtoms {
		t.Errorf("order-atom query error = %v, want ErrOrderAtoms", err)
	}
}

func TestStatsAndReduction(t *testing.T) {
	doc := workload.SiteDocument(workload.DocSpec{Items: 30, Regions: 3, DescriptionDepth: 2, Seed: 1})
	q := cq.MustParse("Q(k) :- Lab[item](i), Child(i, d), Lab[description](d), Child+(d, k), Lab[keyword](k).")
	got, stats, err := EvaluateWithStats(q, doc)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := cq.EvaluateNaive(q, doc)
	if !cq.AnswersEqual(got, want) {
		t.Fatalf("answer mismatch: %d vs %d answers", len(got), len(want))
	}
	if stats.Relations != 2 || stats.SemijoinsRun == 0 || stats.MaterializedRows == 0 {
		t.Errorf("stats look wrong: %+v", stats)
	}
	if stats.RowsAfterReduce > stats.MaterializedRows {
		t.Errorf("full reducer increased the row count: %+v", stats)
	}
}

// TestAgainstNaiveOnRandomQueries is the main correctness check: random
// acyclic twig queries over random trees must agree with the naive
// backtracking evaluator.
func TestAgainstNaiveOnRandomQueries(t *testing.T) {
	axesPool := [][]tree.Axis{
		{tree.Child, tree.Descendant},
		{tree.Child, tree.FollowingSibling},
		{tree.Descendant, tree.Following},
		{tree.Child, tree.Descendant, tree.NextSiblingAxis, tree.FollowingSibling},
	}
	for seed := int64(0); seed < 40; seed++ {
		tr := workload.RandomTree(workload.TreeSpec{
			Nodes: 25 + int(seed%3)*10, Seed: seed, Alphabet: []string{"a", "b", "c"},
		})
		spec := cq.GenSpec{
			Vars:      2 + int(seed%4),
			Alphabet:  []string{"a", "b", "c"},
			LabelProb: 0.6,
			Axes:      axesPool[seed%int64(len(axesPool))],
			Seed:      seed,
			HeadVars:  1 + int(seed%2),
		}
		q := cq.RandomTwig(spec)
		got, err := Evaluate(q, tr)
		if err != nil {
			t.Fatalf("seed %d: Evaluate(%s): %v", seed, q, err)
		}
		want := cq.EvaluateNaive(q, tr)
		if !cq.AnswersEqual(got, want) {
			t.Errorf("seed %d: query %s: yannakakis %d answers, naive %d answers",
				seed, q, len(got), len(want))
		}
	}
}

func TestUnsafeQueryRejected(t *testing.T) {
	tr := paperTree()
	q := &cq.Query{Head: []cq.Variable{"x"}, Labels: []cq.LabelAtom{{Var: "y", Label: "a"}}}
	if _, err := Evaluate(q, tr); err == nil {
		t.Errorf("unsafe query should be rejected")
	}
}
