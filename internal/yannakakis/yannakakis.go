// Package yannakakis evaluates acyclic conjunctive queries over trees with
// Yannakakis' algorithm (Section 4 of the paper; Yannakakis, VLDB 1981):
//
//  1. one relation per atom is materialized from the tree (label atoms
//     restrict the axis relations, so selective queries stay small),
//  2. a join tree over the atoms is built by GYO ear removal,
//  3. the full reducer runs: a bottom-up semijoin pass followed by a
//     top-down semijoin pass, after which every tuple of every relation
//     participates in at least one answer (Prop. 6.9 is the arc-consistency
//     phrasing of this fact),
//  4. answers are produced by joining up the join tree, projecting away
//     columns that are no longer needed after each join, so intermediate
//     results stay output-bounded (Theorem 4.1, Prop. 4.2, Prop. 6.10).
//
// The package works for Boolean, unary, and k-ary acyclic queries.  Cyclic
// queries are rejected; rewrite them first (Theorem 5.1, package rewrite) or
// fall back to cq.EvaluateNaive.
package yannakakis

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/relstore"
	"repro/internal/tree"
)

// ErrCyclic is returned when the query is not acyclic.
var ErrCyclic = errors.New("yannakakis: query is not acyclic")

// ErrOrderAtoms is returned when the query contains order atoms (<pre ...),
// which this evaluator does not materialize (their relations are
// quadratically large); the rewriting module eliminates them before calling
// this package.
var ErrOrderAtoms = errors.New("yannakakis: query contains order atoms")

// Stats reports the work done by one evaluation, for the benchmark harness
// and the ablation experiments.
type Stats struct {
	Relations        int // number of materialized atom relations
	MaterializedRows int // total rows materialized before reduction
	RowsAfterReduce  int // total rows after the full reducer
	SemijoinsRun     int
	JoinsRun         int
}

// Index supplies shared, pre-computed document artifacts so repeated
// evaluations over the same tree skip the per-call scans: document-ordered
// per-label node lists for the unary relations, and memoized structural-join
// pair relations for the binary atoms (Section 2's labeling-scheme joins
// serving the Section 4 evaluator).  Implementations must hand out artifacts
// that are safe for concurrent readers; package index provides one.
type Index interface {
	// NodesWithLabel returns, in document order, the nodes carrying the label.
	NodesWithLabel(label string) []tree.NodeID
	// StructuralPairs returns the (from_pre, to_pre) pair relation of the
	// axis restricted to the given labels ("" = any), or ok=false when no
	// precomputed join exists for the axis.  The restriction must be
	// label-complete: a node carrying the label in any position (not just as
	// its primary label) belongs to the side; package index guarantees this,
	// which is what makes the shortcut sound on multi-labeled trees.
	StructuralPairs(axis tree.Axis, fromLabel, toLabel string) (*relstore.Relation, bool)
}

// Evaluate runs Yannakakis' algorithm and returns the sorted, de-duplicated
// answers.
func Evaluate(q *cq.Query, t *tree.Tree) ([]cq.Answer, error) {
	answers, _, err := evaluateWithStats(q, t, nil)
	return answers, err
}

// EvaluateIndexed is Evaluate with atom materialization served by a shared
// index (may be nil, in which case the tree is scanned per call).
func EvaluateIndexed(q *cq.Query, t *tree.Tree, ix Index) ([]cq.Answer, error) {
	answers, _, err := evaluateWithStats(q, t, ix)
	return answers, err
}

// Satisfiable evaluates the Boolean version of the query (ignoring the head).
func Satisfiable(q *cq.Query, t *tree.Tree) (bool, error) {
	b := q.Clone()
	b.Head = nil
	ans, err := Evaluate(b, t)
	if err != nil {
		return false, err
	}
	return len(ans) > 0, nil
}

// EvaluateWithStats is Evaluate plus work counters.
func EvaluateWithStats(q *cq.Query, t *tree.Tree) ([]cq.Answer, Stats, error) {
	return evaluateWithStats(q, t, nil)
}

func evaluateWithStats(q *cq.Query, t *tree.Tree, ix Index) ([]cq.Answer, Stats, error) {
	var stats Stats
	if len(q.Orders) > 0 {
		return nil, stats, ErrOrderAtoms
	}
	if !q.IsAcyclic() {
		return nil, stats, ErrCyclic
	}
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}

	rels, err := materialize(q, t, ix)
	if err != nil {
		return nil, stats, err
	}
	stats.Relations = len(rels)
	for _, r := range rels {
		stats.MaterializedRows += r.Len()
	}
	if len(rels) == 0 {
		// Empty body: the query is trivially true with the empty answer.
		return []cq.Answer{{}}, stats, nil
	}

	forest, ok := buildJoinForest(rels)
	if !ok {
		// Should not happen for acyclic queries, but keep the invariant
		// explicit rather than silently producing wrong answers.
		return nil, stats, ErrCyclic
	}

	// Full reducer: bottom-up then top-down semijoin passes.
	order := topoOrder(forest)
	for i := len(order) - 1; i >= 0; i-- { // leaves towards roots
		n := order[i]
		p := forest[n]
		if p >= 0 {
			rels[p] = rels[p].SemiJoin(rels[p].Name(), rels[n])
			stats.SemijoinsRun++
		}
	}
	for _, n := range order { // roots towards leaves
		p := forest[n]
		if p >= 0 {
			rels[n] = rels[n].SemiJoin(rels[n].Name(), rels[p])
			stats.SemijoinsRun++
		}
	}
	for _, r := range rels {
		stats.RowsAfterReduce += r.Len()
	}

	// A Boolean query is satisfied iff every relation is nonempty after the
	// reduction (emptiness anywhere propagates to everything in a component;
	// across components each must be nonempty independently).
	for _, r := range rels {
		if r.Len() == 0 {
			return nil, stats, nil
		}
	}
	if q.IsBoolean() {
		return []cq.Answer{{}}, stats, nil
	}

	headCols := make([]string, len(q.Head))
	headSet := map[string]bool{}
	for i, v := range q.Head {
		headCols[i] = string(v)
		headSet[string(v)] = true
	}

	// Join the relations component by component in top-down join-tree order,
	// projecting after each join onto head columns plus columns still needed
	// by unjoined relations of the same component.
	joined := joinComponents(rels, forest, order, headSet, &stats)

	// Combine components: answers are the cross product of the per-component
	// projections onto their head columns; components without head columns
	// only gate satisfiability (already checked above).
	result := relstore.NewRelation("answers")
	result.Insert() // single empty tuple to cross-product against
	for _, jr := range joined {
		var keep []string
		for _, c := range jr.Columns() {
			if headSet[c] {
				keep = append(keep, c)
			}
		}
		if len(keep) == 0 {
			continue
		}
		proj := jr.Project("p", keep...).Distinct("p")
		result = result.NaturalJoin("answers", proj)
		stats.JoinsRun++
	}

	// Assemble answers in head order.
	colIdx := make([]int, len(headCols))
	for i, c := range headCols {
		colIdx[i] = result.ColumnIndex(c)
		if colIdx[i] < 0 {
			return nil, stats, fmt.Errorf("yannakakis: internal error: head column %s missing from result", c)
		}
	}
	seen := map[string]bool{}
	var answers []cq.Answer
	for _, tp := range result.Tuples() {
		ans := make(cq.Answer, len(colIdx))
		for i, ci := range colIdx {
			ans[i] = tree.NodeID(tp[ci])
		}
		k := fmt.Sprint(ans)
		if !seen[k] {
			seen[k] = true
			answers = append(answers, ans)
		}
	}
	cq.SortAnswers(answers)
	return answers, stats, nil
}

// materialize builds one relation per atom.  Binary atoms give two-column
// relations over the axis pairs restricted by the label atoms of both
// endpoints; variables that occur only in label atoms give one-column
// relations.  Column names are the variable names, so natural joins and
// semijoins align automatically.
func materialize(q *cq.Query, t *tree.Tree, ix Index) ([]*relstore.Relation, error) {
	labelsOf := map[cq.Variable][]string{}
	for _, v := range q.Variables() {
		labelsOf[v] = q.LabelsOf(v)
	}
	matches := func(n tree.NodeID, v cq.Variable) bool {
		for _, l := range labelsOf[v] {
			if !t.HasLabel(n, l) {
				return false
			}
		}
		return true
	}
	// candidates returns the nodes that can possibly bind v, served from the
	// index's per-label lists when available.
	candidates := func(v cq.Variable) []tree.NodeID {
		if ix != nil && len(labelsOf[v]) > 0 {
			return ix.NodesWithLabel(labelsOf[v][0])
		}
		return t.Nodes()
	}

	var rels []*relstore.Relation
	coveredByBinary := map[cq.Variable]bool{}
	for i, a := range q.Axes {
		if a.From == a.To {
			// R(x, x): a unary condition on x.
			r := relstore.NewRelation(fmt.Sprintf("atom%d", i), string(a.From))
			for _, n := range candidates(a.From) {
				if matches(n, a.From) && t.Holds(a.Axis, n, n) {
					r.Insert(int64(n))
				}
			}
			rels = append(rels, r)
			coveredByBinary[a.From] = true
			continue
		}
		var r *relstore.Relation
		if pairs, filtered, ok := structuralPairs(t, ix, a, labelsOf); ok {
			// The precomputed structural join is label-complete (secondary
			// labels included), restricted to the first label of each endpoint;
			// endpoints carrying further label atoms are filtered here.  The
			// cached pair relation is swept through its dense pre columns and
			// the atom relation built columnar, so the per-pair tuple
			// allocations of the row route disappear.
			r = relstore.NewPairs(fmt.Sprintf("atom%d", i), string(a.From), string(a.To))
			fromPre, toPre, _ := pairs.IntColumns(0, 1)
			for k := range fromPre {
				u, v := t.NodeAtPre(int(fromPre[k])), t.NodeAtPre(int(toPre[k]))
				if filtered && (!matches(u, a.From) || !matches(v, a.To)) {
					continue
				}
				r.AppendPair(int64(u), int64(v))
			}
		} else {
			r = relstore.NewRelation(fmt.Sprintf("atom%d", i), string(a.From), string(a.To))
			for _, u := range candidates(a.From) {
				if !matches(u, a.From) {
					continue
				}
				t.StepFunc(a.Axis, u, func(v tree.NodeID) bool {
					if matches(v, a.To) {
						r.Insert(int64(u), int64(v))
					}
					return true
				})
			}
		}
		rels = append(rels, r)
		coveredByBinary[a.From] = true
		coveredByBinary[a.To] = true
	}
	for _, v := range q.Variables() {
		if coveredByBinary[v] {
			continue
		}
		if len(labelsOf[v]) == 0 && !headContains(q, v) {
			// Variable constrained by nothing: it cannot appear (Validate
			// guarantees head variables occur in the body), so skip.
			continue
		}
		r := relstore.NewRelation("unary_"+string(v), string(v))
		for _, n := range candidates(v) {
			if matches(n, v) {
				r.Insert(int64(n))
			}
		}
		rels = append(rels, r)
	}
	return rels, nil
}

// structuralPairs asks the index for a precomputed pair relation for the
// atom, restricted to the first label atom of each endpoint.  The index's
// sides are label-complete, so this is sound on multi-labeled trees; an
// endpoint carrying several label atoms is served from its first label's
// relation with filtered=true, telling the caller to apply the remaining
// labels per pair (the index itself refuses only unsupported axes).
func structuralPairs(t *tree.Tree, ix Index, a cq.AxisAtom, labelsOf map[cq.Variable][]string) (pairs *relstore.Relation, filtered, ok bool) {
	if ix == nil {
		return nil, false, false
	}
	fromLabel, toLabel := "", ""
	if ls := labelsOf[a.From]; len(ls) > 0 {
		fromLabel = ls[0]
	}
	if ls := labelsOf[a.To]; len(ls) > 0 {
		toLabel = ls[0]
	}
	pairs, ok = ix.StructuralPairs(a.Axis, fromLabel, toLabel)
	filtered = len(labelsOf[a.From]) > 1 || len(labelsOf[a.To]) > 1
	return pairs, filtered, ok
}

func headContains(q *cq.Query, v cq.Variable) bool {
	for _, h := range q.Head {
		if h == v {
			return true
		}
	}
	return false
}

// buildJoinForest runs GYO ear removal over the relations' column sets and
// returns parent indices (-1 for roots), or ok=false if the hypergraph is
// cyclic.
func buildJoinForest(rels []*relstore.Relation) (parent []int, ok bool) {
	n := len(rels)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	removed := make([]bool, n)
	live := n
	vars := make([]map[string]bool, n)
	for i, r := range rels {
		vars[i] = map[string]bool{}
		for _, c := range r.Columns() {
			vars[i][c] = true
		}
	}
	for live > 1 {
		progress := false
		for i := 0; i < n && live > 1; i++ {
			if removed[i] {
				continue
			}
			var shared []string
			for v := range vars[i] {
				for j := 0; j < n; j++ {
					if j != i && !removed[j] && vars[j][v] {
						shared = append(shared, v)
						break
					}
				}
			}
			witness := -1
			if len(shared) == 0 {
				witness = -2
			} else {
				for j := 0; j < n; j++ {
					if j == i || removed[j] {
						continue
					}
					all := true
					for _, v := range shared {
						if !vars[j][v] {
							all = false
							break
						}
					}
					if all {
						witness = j
						break
					}
				}
			}
			if witness == -1 {
				continue
			}
			removed[i] = true
			live--
			if witness >= 0 {
				parent[i] = witness
			}
			progress = true
		}
		if !progress {
			return nil, false
		}
	}
	return parent, true
}

// topoOrder returns the relation indices ordered so that parents come before
// children (roots first).
func topoOrder(parent []int) []int {
	n := len(parent)
	depth := make([]int, n)
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if parent[i] < 0 {
			return 0
		}
		if depth[i] == 0 {
			depth[i] = depthOf(parent[i]) + 1
		}
		return depth[i]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		depthOf(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return depth[idx[a]] < depth[idx[b]] })
	return idx
}

// joinComponents joins the reduced relations of every join-tree component in
// top-down order, projecting eagerly.  Returns one joined relation per
// component.
func joinComponents(rels []*relstore.Relation, forest []int, order []int, headSet map[string]bool, stats *Stats) []*relstore.Relation {
	n := len(rels)
	// Identify component root for each relation.
	rootOf := make([]int, n)
	for i := range rootOf {
		r := i
		for forest[r] >= 0 {
			r = forest[r]
		}
		rootOf[i] = r
	}
	// Group members by root preserving top-down order.
	members := map[int][]int{}
	for _, i := range order {
		members[rootOf[i]] = append(members[rootOf[i]], i)
	}
	var roots []int
	for r := range members {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	var out []*relstore.Relation
	for _, root := range roots {
		ms := members[root]
		acc := rels[ms[0]]
		for k := 1; k < len(ms); k++ {
			acc = acc.NaturalJoin("acc", rels[ms[k]])
			stats.JoinsRun++
			// Project away columns not needed anymore: keep head columns and
			// columns occurring in any not-yet-joined member of this component.
			needed := map[string]bool{}
			for c := range headSet {
				needed[c] = true
			}
			for k2 := k + 1; k2 < len(ms); k2++ {
				for _, c := range rels[ms[k2]].Columns() {
					needed[c] = true
				}
			}
			var keep []string
			for _, c := range acc.Columns() {
				if needed[c] {
					keep = append(keep, c)
				}
			}
			if len(keep) == 0 {
				// Nothing of this component is needed downstream beyond its
				// nonemptiness; collapse to a single witness tuple.
				if acc.Len() > 0 {
					w := relstore.NewRelation("acc")
					w.Insert()
					acc = w
				} else {
					acc = relstore.NewRelation("acc")
				}
				continue
			}
			if len(keep) < acc.Arity() {
				acc = acc.Project("acc", keep...).Distinct("acc")
			}
		}
		out = append(out, acc)
	}
	return out
}
