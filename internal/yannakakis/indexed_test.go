package yannakakis_test

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/index"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// TestEvaluateIndexedMatchesEvaluate checks the index-served materialization
// (label lists + cached structural joins) against the plain evaluator, on
// both a single-labeled tree and a multi-labeled document — the shortcut is
// label-complete, so both hit the pair cache.
func TestEvaluateIndexedMatchesEvaluate(t *testing.T) {
	queries := []string{
		"Q(x, y) :- Lab[a](x), Child+(x, y), Lab[b](y).",
		"Q(x, y) :- Lab[a](x), Child(x, y), Lab[b](y).",
		"Q(y) :- Lab[a](x), Child+(x, y).",
		"Q(x) :- Lab[a](x), Following(x, y), Lab[c](y).",
		"Q :- Lab[a](x), Child+(x, y), Lab[c](y).",
	}
	single := workload.RandomTree(workload.TreeSpec{Nodes: 250, Seed: 31, Alphabet: []string{"a", "b", "c"}})
	site := workload.SiteDocument(workload.DocSpec{Items: 15, Regions: 2, DescriptionDepth: 2, Seed: 32})
	siteQueries := []string{
		"Q(i, k) :- Lab[item](i), Child+(i, k), Lab[keyword](k).",
		"Q(i) :- Lab[item](i), Child(i, n), Lab[name](n).",
		// Attribute labels are secondary labels: only a label-complete index
		// can serve these from the pair cache.
		"Q(i) :- Lab[region](r), Lab[@name=africa](r), Child(r, i), Lab[item](i).",
		"Q(k) :- Lab[item](i), Lab[@id=item0](i), Child+(i, k), Lab[keyword](k).",
	}
	ix := index.New(single)
	for _, qs := range queries {
		q := cq.MustParse(qs)
		want, err := yannakakis.Evaluate(q, single)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		got, err := yannakakis.EvaluateIndexed(q, single, ix)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if !cq.AnswersEqual(want, got) {
			t.Errorf("%s: indexed answers diverge", qs)
		}
	}
	if ix.Snapshot().PairBuilds == 0 {
		t.Errorf("no structural join was served from the index on a single-labeled tree")
	}

	six := index.New(site)
	for _, qs := range siteQueries {
		q := cq.MustParse(qs)
		want, err := yannakakis.Evaluate(q, site)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		got, err := yannakakis.EvaluateIndexed(q, site, six)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if !cq.AnswersEqual(want, got) {
			t.Errorf("%s: indexed answers diverge on multi-labeled doc", qs)
		}
	}
	if six.Snapshot().PairBuilds == 0 {
		t.Errorf("multi-labeled document must be served by the label-complete XASR shortcut")
	}
}
