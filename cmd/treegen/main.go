// Command treegen generates synthetic tree-structured (XML) documents for
// experiments: random trees, XMark-style site catalogs, and the degenerate
// deep/wide shapes used by the streaming experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tree"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

func main() {
	var (
		shape  = flag.String("shape", "random", "document shape: random, site, path, wide, complete")
		nodes  = flag.Int("nodes", 1000, "number of nodes (random, path, wide)")
		items  = flag.Int("items", 100, "number of items (site)")
		fanout = flag.Int("fanout", 0, "maximum fan-out (random; 0 = unbounded) or fan-out (complete)")
		depth  = flag.Int("depth", 0, "maximum depth (random; 0 = unbounded) or depth (complete)")
		seed   = flag.Int64("seed", 1, "random seed")
		indent = flag.Bool("indent", false, "indent the XML output")
	)
	flag.Parse()

	var t *tree.Tree
	switch *shape {
	case "random":
		t = workload.RandomTree(workload.TreeSpec{Nodes: *nodes, MaxFanout: *fanout, MaxDepth: *depth, Seed: *seed})
	case "site":
		t = workload.SiteDocument(workload.DocSpec{Items: *items, Regions: 6, DescriptionDepth: 2, Seed: *seed})
	case "path":
		t = workload.PathTree(*nodes, "a")
	case "wide":
		t = workload.WideTree(*nodes, "a")
	case "complete":
		f, d := *fanout, *depth
		if f == 0 {
			f = 2
		}
		if d == 0 {
			d = 10
		}
		t = workload.CompleteTree(f, d, nil)
	default:
		fmt.Fprintf(os.Stderr, "treegen: unknown shape %q\n", *shape)
		os.Exit(2)
	}
	fmt.Print(xmldoc.Serialize(t, *indent))
	if !*indent {
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "treegen: %d nodes, height %d, %d labels\n", t.Len(), t.Height(), len(t.LabelAlphabet()))
}
