// Command benchjson converts `go test -bench` output into the machine-readable
// BENCH_*.json files that record the repository's performance trajectory, and
// compares two such files benchstat-style.
//
// Parse mode (default) reads benchmark output on stdin and writes JSON on
// stdout:
//
//	go test -bench . -benchmem -count 3 | benchjson -label pr6 > BENCH_6.json
//
// Each benchmark name maps to the median over its repeated runs (count > 1
// smooths scheduler noise without needing external tooling).
//
// Compare mode diffs two JSON files and prints a markdown table with the
// old/new ratio per benchmark; it always exits 0 (warn-only, no hard gate):
//
//	benchjson -compare BENCH_5.json BENCH_6.json
//
// Metrics mode scrapes a running treeqd's Prometheus /metrics endpoint and
// writes the server-side latency histograms as JSON — count, sum, and
// interpolated p50/p90/p99 per labelled series — so ci/bench_json.sh can
// record observed serving percentiles alongside the micro-benchmarks:
//
//	benchjson -metrics-url http://localhost:8080/metrics > METRICS.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obsv"
)

// Result is the aggregated record for one benchmark.
type Result struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`      // number of -count repetitions seen
	Iters    int64   `json:"iters"`     // b.N of the median run
	NsOp     float64 `json:"ns_op"`     // median ns/op
	BOp      float64 `json:"b_op"`      // median B/op (-1 if -benchmem absent)
	AllocsOp float64 `json:"allocs_op"` // median allocs/op (-1 if absent)
}

// File is the on-disk shape of a BENCH_*.json file.
type File struct {
	Label      string   `json:"label"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label stored in the output JSON (e.g. pr6)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files instead of parsing")
	metricsURL := flag.String("metrics-url", "", "scrape this Prometheus /metrics endpoint and emit histogram percentiles as JSON")
	flag.Parse()

	if *metricsURL != "" {
		if err := scrapeMetrics(*metricsURL, *label); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := parse(os.Stdin, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// HistogramSummary is one labelled histogram series of a /metrics scrape,
// reduced to its count, sum, and interpolated percentiles (seconds).
type HistogramSummary struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  float64 `json:"count"`
	SumS   float64 `json:"sum_s"`
	P50S   float64 `json:"p50_s"`
	P90S   float64 `json:"p90_s"`
	P99S   float64 `json:"p99_s"`
}

// MetricsFile is the on-disk shape of a -metrics-url scrape.
type MetricsFile struct {
	Label      string             `json:"label,omitempty"`
	Source     string             `json:"source"`
	ScrapedAt  string             `json:"scraped_at"`
	Histograms []HistogramSummary `json:"histograms"`
}

// scrapeMetrics fetches the exposition, validates it with the same parser the
// CI promlint step uses, and emits every histogram family's per-series
// percentile summary as JSON on stdout.
func scrapeMetrics(url, label string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := obsv.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("%s: malformed exposition: %w", url, err)
	}
	out := MetricsFile{Label: label, Source: url, ScrapedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, fam := range fams {
		if fam.Type != obsv.TypeHistogram {
			continue
		}
		out.Histograms = append(out.Histograms, summarizeHistogram(fam)...)
	}
	sort.Slice(out.Histograms, func(i, j int) bool {
		if out.Histograms[i].Name != out.Histograms[j].Name {
			return out.Histograms[i].Name < out.Histograms[j].Name
		}
		return out.Histograms[i].Labels < out.Histograms[j].Labels
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// summarizeHistogram reduces one histogram family to per-series summaries.
func summarizeHistogram(fam *obsv.ExpoFamily) []HistogramSummary {
	type series struct {
		bounds []float64
		counts []float64
		sum    float64
		count  float64
	}
	bySeries := map[string]*series{}
	get := func(labels string) *series {
		s := bySeries[labels]
		if s == nil {
			s = &series{}
			bySeries[labels] = s
		}
		return s
	}
	for key, value := range fam.Samples {
		metric, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			metric, labels = key[:i], key[i+1:len(key)-1]
		}
		switch metric {
		case fam.Name + "_bucket":
			bound, rest := splitLE(labels)
			s := get(rest)
			s.bounds = append(s.bounds, bound)
			s.counts = append(s.counts, value)
		case fam.Name + "_sum":
			get(labels).sum = value
		case fam.Name + "_count":
			get(labels).count = value
		}
	}
	var out []HistogramSummary
	for labels, s := range bySeries {
		if s.count == 0 {
			continue
		}
		sort.Sort(&boundedSort{s.bounds, s.counts})
		out = append(out, HistogramSummary{
			Name:   fam.Name,
			Labels: labels,
			Count:  s.count,
			SumS:   s.sum,
			P50S:   percentile(s.bounds, s.counts, 0.50),
			P90S:   percentile(s.bounds, s.counts, 0.90),
			P99S:   percentile(s.bounds, s.counts, 0.99),
		})
	}
	return out
}

// splitLE pulls the le bound out of a bucket label set.
func splitLE(labels string) (float64, string) {
	parts := strings.Split(labels, ",")
	rest := make([]string, 0, len(parts))
	bound := math.Inf(1)
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			if text := p[4 : len(p)-1]; text != "+Inf" {
				bound, _ = strconv.ParseFloat(text, 64)
			}
			continue
		}
		rest = append(rest, p)
	}
	return bound, strings.Join(rest, ",")
}

// percentile interpolates the q-quantile from cumulative bucket counts, the
// same estimate Prometheus's histogram_quantile computes.  The +Inf bucket
// degrades to the highest finite bound (there is no upper edge to
// interpolate against).
func percentile(bounds, cumCounts []float64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	total := cumCounts[len(cumCounts)-1]
	if total == 0 {
		return 0
	}
	rank := q * total
	for i, c := range cumCounts {
		if c < rank {
			continue
		}
		if math.IsInf(bounds[i], 1) {
			if i == 0 {
				return 0
			}
			return bounds[i-1]
		}
		lower, prevCount := 0.0, 0.0
		if i > 0 {
			lower, prevCount = bounds[i-1], cumCounts[i-1]
		}
		inBucket := c - prevCount
		if inBucket == 0 {
			return bounds[i]
		}
		return lower + (bounds[i]-lower)*(rank-prevCount)/inBucket
	}
	return bounds[len(bounds)-1]
}

type boundedSort struct {
	bounds []float64
	counts []float64
}

func (s *boundedSort) Len() int           { return len(s.bounds) }
func (s *boundedSort) Less(i, j int) bool { return s.bounds[i] < s.bounds[j] }
func (s *boundedSort) Swap(i, j int) {
	s.bounds[i], s.bounds[j] = s.bounds[j], s.bounds[i]
	s.counts[i], s.counts[j] = s.counts[j], s.counts[i]
}

type sample struct {
	iters    int64
	nsOp     float64
	bOp      float64
	allocsOp float64
}

func parse(in *os.File, label string) error {
	out := File{Label: label}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := sample{bOp: -1, allocsOp: -1}
		s.iters, _ = strconv.ParseInt(m[2], 10, 64)
		s.nsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.bOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			s.allocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		samples[m[1]] = append(samples[m[1]], s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	for name, ss := range samples {
		sort.Slice(ss, func(i, j int) bool { return ss[i].nsOp < ss[j].nsOp })
		med := ss[len(ss)/2]
		out.Benchmarks = append(out.Benchmarks, Result{
			Name:     name,
			Runs:     len(ss),
			Iters:    med.iters,
			NsOp:     med.nsOp,
			BOp:      med.bOp,
			AllocsOp: med.allocsOp,
		})
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func load(path string) (*File, map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		byName[r.Name] = r
	}
	return &f, byName, nil
}

// compareFiles prints a markdown regression table.  A benchmark is flagged
// when ns/op grew by more than 10%; the process still exits 0 — the table is
// advisory until the trajectory has enough points to set a hard gate.
func compareFiles(oldPath, newPath string) error {
	oldF, oldBy, err := load(oldPath)
	if err != nil {
		return err
	}
	newF, newBy, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("### Benchmark comparison: `%s` (%s) vs `%s` (%s)\n\n",
		oldPath, oldF.Label, newPath, newF.Label)
	fmt.Println("| benchmark | old ns/op | new ns/op | ratio | old allocs/op | new allocs/op | status |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---|")
	names := make([]string, 0, len(newBy))
	for name := range newBy {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Printf("| %s | – | %.0f | new | – | %.0f | ➕ new |\n", name, n.NsOp, n.AllocsOp)
			continue
		}
		ratio := n.NsOp / o.NsOp
		status := "ok"
		if ratio > 1.10 {
			status = "⚠ regression"
			regressions++
		} else if ratio < 0.90 {
			status = "🚀 faster"
		}
		fmt.Printf("| %s | %.0f | %.0f | %.2fx | %.0f | %.0f | %s |\n",
			name, o.NsOp, n.NsOp, ratio, o.AllocsOp, n.AllocsOp, status)
	}
	removed := 0
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			removed++
		}
	}
	fmt.Printf("\n%d benchmarks compared, %d flagged as regressions (warn-only), %d removed since %s.\n",
		len(names), regressions, removed, oldF.Label)
	return nil
}
