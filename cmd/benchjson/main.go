// Command benchjson converts `go test -bench` output into the machine-readable
// BENCH_*.json files that record the repository's performance trajectory, and
// compares two such files benchstat-style.
//
// Parse mode (default) reads benchmark output on stdin and writes JSON on
// stdout:
//
//	go test -bench . -benchmem -count 3 | benchjson -label pr6 > BENCH_6.json
//
// Each benchmark name maps to the median over its repeated runs (count > 1
// smooths scheduler noise without needing external tooling).
//
// Compare mode diffs two JSON files and prints a markdown table with the
// old/new ratio per benchmark; it always exits 0 (warn-only, no hard gate):
//
//	benchjson -compare BENCH_5.json BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated record for one benchmark.
type Result struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`      // number of -count repetitions seen
	Iters    int64   `json:"iters"`     // b.N of the median run
	NsOp     float64 `json:"ns_op"`     // median ns/op
	BOp      float64 `json:"b_op"`      // median B/op (-1 if -benchmem absent)
	AllocsOp float64 `json:"allocs_op"` // median allocs/op (-1 if absent)
}

// File is the on-disk shape of a BENCH_*.json file.
type File struct {
	Label      string   `json:"label"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label stored in the output JSON (e.g. pr6)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files instead of parsing")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := parse(os.Stdin, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

type sample struct {
	iters    int64
	nsOp     float64
	bOp      float64
	allocsOp float64
}

func parse(in *os.File, label string) error {
	out := File{Label: label}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := sample{bOp: -1, allocsOp: -1}
		s.iters, _ = strconv.ParseInt(m[2], 10, 64)
		s.nsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.bOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			s.allocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		samples[m[1]] = append(samples[m[1]], s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	for name, ss := range samples {
		sort.Slice(ss, func(i, j int) bool { return ss[i].nsOp < ss[j].nsOp })
		med := ss[len(ss)/2]
		out.Benchmarks = append(out.Benchmarks, Result{
			Name:     name,
			Runs:     len(ss),
			Iters:    med.iters,
			NsOp:     med.nsOp,
			BOp:      med.bOp,
			AllocsOp: med.allocsOp,
		})
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func load(path string) (*File, map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		byName[r.Name] = r
	}
	return &f, byName, nil
}

// compareFiles prints a markdown regression table.  A benchmark is flagged
// when ns/op grew by more than 10%; the process still exits 0 — the table is
// advisory until the trajectory has enough points to set a hard gate.
func compareFiles(oldPath, newPath string) error {
	oldF, oldBy, err := load(oldPath)
	if err != nil {
		return err
	}
	newF, newBy, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("### Benchmark comparison: `%s` (%s) vs `%s` (%s)\n\n",
		oldPath, oldF.Label, newPath, newF.Label)
	fmt.Println("| benchmark | old ns/op | new ns/op | ratio | old allocs/op | new allocs/op | status |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---|")
	names := make([]string, 0, len(newBy))
	for name := range newBy {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Printf("| %s | – | %.0f | new | – | %.0f | ➕ new |\n", name, n.NsOp, n.AllocsOp)
			continue
		}
		ratio := n.NsOp / o.NsOp
		status := "ok"
		if ratio > 1.10 {
			status = "⚠ regression"
			regressions++
		} else if ratio < 0.90 {
			status = "🚀 faster"
		}
		fmt.Printf("| %s | %.0f | %.0f | %.2fx | %.0f | %.0f | %s |\n",
			name, o.NsOp, n.NsOp, ratio, o.AllocsOp, n.AllocsOp, status)
	}
	removed := 0
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			removed++
		}
	}
	fmt.Printf("\n%d benchmarks compared, %d flagged as regressions (warn-only), %d removed since %s.\n",
		len(names), regressions, removed, oldF.Label)
	return nil
}
