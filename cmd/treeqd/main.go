// Command treeqd serves the corpus query service over HTTP: the network
// front-end that turns the compile-once/run-many engine into a multi-user
// system.  It manages a corpus of named XML documents and answers queries in
// every language the engine speaks (Core XPath, conjunctive queries, monadic
// datalog, twig patterns, streaming path queries, and top-k subtree
// similarity search).
//
// Endpoints (all JSON unless noted).  The /v1 paths are canonical; the
// unversioned aliases are deprecated and kept for one release (the mapping
// is published in /statusz under "api"):
//
//	GET    /v1/healthz          liveness probe
//	GET    /v1/statusz          service + server counters, per-document versions,
//	                            similarity-route counters, deprecation table
//	GET    /v1/metrics          Prometheus text exposition (histograms, gauges)
//	GET    /v1/docs             list document names and versions
//	PUT    /v1/docs/{name}      upsert: add the XML body (201, version 1) or
//	                            update a live document in place (200, version
//	                            bumped, warm plans re-prepared, not dropped)
//	DELETE /v1/docs/{name}      remove a document
//	POST   /v1/query            {"doc","lang","query","limit"?,"timeout_ms"?,"plan"?}
//	POST   /v1/corpus/query     {"lang","query","limit"?,"timeout_ms"?,"doc_timeout_ms"?}
//	GET    /v1/prepared         list registered prepared queries
//	POST   /v1/prepared         {"doc","lang","query"} -> {"id",...}
//	POST   /v1/prepared/{id}    execute a registered prepared query
//	DELETE /v1/prepared/{id}    unregister
//
// The three /v1 query routes answer in one unified envelope {results, total,
// truncated, version, request_id}, each result {doc, doc_version, node,
// answer?, score?} — score only on the ranked similarity route (lang
// "similar", query "{k=N} {maxdist=N} SEXPR"), where it is the tree edit
// distance and results arrive closest-first.  Errors everywhere are {error,
// code, request_id, retry_after_s?} with a stable code enum.  The legacy
// aliases keep their historical response shapes.
//
// Every query request runs under a deadline (request-supplied, clamped to
// -max-timeout) and the admission gate rejects work beyond -max-inflight with
// 429, so overload degrades by shedding instead of queueing.
//
// Observability: every response carries an X-Request-ID (accepted from the
// client or generated), JSON access logs go to stderr (-access-log=false to
// disable), queries slower than -slow-query get one structured warning line
// with a per-stage breakdown, and -debug-addr serves pprof plus /debug/vars
// on a separate listener.  Append ?debug=timings to a query request to get
// the same per-stage spans echoed in the response.
//
// Example:
//
//	treeqd -addr :8080 -load docs/ &
//	curl -X PUT --data-binary @doc.xml localhost:8080/v1/docs/mydoc
//	curl -X POST -d '{"doc":"mydoc","lang":"xpath","query":"//item//keyword"}' localhost:8080/v1/query
//	curl -X PUT --data-binary @doc-v2.xml localhost:8080/v1/docs/mydoc   # live update
//	curl -X POST -d '{"lang":"xpath","query":"//keyword","limit":10}' localhost:8080/v1/corpus/query
//	curl -X POST -d '{"lang":"similar","query":"k=5 description(keyword)","limit":5}' localhost:8080/v1/corpus/query
//
// See docs/API.md for the complete HTTP API reference and docs/ARCHITECTURE.md
// for how the pieces fit together.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"log/slog"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/server"
	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		load          = flag.String("load", "", "directory of *.xml documents to preload")
		shards        = flag.Int("shards", 8, "engine-pool shards")
		workers       = flag.Int("workers", 0, "fan-out worker-pool width (0 = GOMAXPROCS)")
		planCache     = flag.Int("plan-cache", 512, "plan-cache capacity in compiled plans (0 = unbounded)")
		planClauseCap = flag.Int("plan-clause-cap", 2_000_000, "deny plan-cache admission above this many clauses (0 = admit all)")
		pairCache     = flag.Int("pair-cache", 256, "per-engine structural-join pair-cache cap (0 = unbounded)")
		maxInFlight   = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission gate width; excess requests get 429 (0 = unbounded)")
		timeout       = flag.Duration("timeout", server.DefaultTimeout, "default per-request deadline")
		maxTimeout    = flag.Duration("max-timeout", server.DefaultMaxTimeout, "clamp on request-supplied deadlines")
		retryAfter    = flag.Duration("retry-after", 0, "fixed Retry-After hint on 429 responses (0 = derive from observed load)")
		slowQuery     = flag.Duration("slow-query", 250*time.Millisecond, "log one structured warning per query slower than this (0 = disabled)")
		accessLog     = flag.Bool("access-log", true, "emit one JSON access-log line per request to stderr")
		debugAddr     = flag.String("debug-addr", "", "serve pprof and /debug/vars on this separate address (empty = disabled)")
	)
	flag.Parse()

	// One registry covers both layers: the service's prepare-stage histogram
	// and the server's request/query families land in the same /metrics scrape.
	reg := obsv.NewRegistry()
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	svc := service.New(
		service.WithShards(*shards),
		service.WithWorkers(*workers),
		service.WithPlanCacheSize(*planCache),
		service.WithPlanClauseCap(*planClauseCap),
		service.WithEngineOptions(core.WithPairCacheCap(*pairCache)),
		service.WithMetrics(reg),
	)
	if *load != "" {
		n, err := preload(svc, *load)
		if err != nil {
			log.Fatalf("treeqd: %v", err)
		}
		log.Printf("treeqd: preloaded %d documents from %s", n, *load)
	}

	serverOpts := []server.Option{
		server.WithMaxInFlight(*maxInFlight),
		server.WithDefaultTimeout(*timeout),
		server.WithMaxTimeout(*maxTimeout),
		server.WithRetryAfter(*retryAfter),
		server.WithRegistry(reg),
		server.WithSlowQueryLog(*slowQuery, logger),
	}
	if *accessLog {
		serverOpts = append(serverOpts, server.WithAccessLog(logger))
	}
	handler := server.New(svc, serverOpts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(svc),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("treeqd: debug listener: %v", err)
			}
		}()
		log.Printf("treeqd: pprof and /debug/vars on %s", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("treeqd: serving on %s (shards=%d, max-inflight=%d, timeout=%v, slow-query=%v)",
		*addr, *shards, *maxInFlight, *timeout, *slowQuery)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("treeqd: %v", err)
		}
	case sig := <-sigc:
		log.Printf("treeqd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("treeqd: shutdown: %v", err)
		}
	}
}

// preload adds every *.xml file under dir to the corpus, named by base name.
func preload(svc *service.Service, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("no *.xml documents under %q", dir)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return 0, err
		}
		if err := svc.AddXML(filepath.Base(p), string(data)); err != nil {
			return 0, err
		}
	}
	return len(paths), nil
}
