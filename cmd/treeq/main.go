// Command treeq evaluates queries over an XML document using the core
// engine: Core XPath expressions, conjunctive queries in datalog syntax, and
// monadic datalog programs.  It prints the selected nodes (preorder index
// and label) and, with -plan, the technique the planner chose.
//
// Examples:
//
//	treeq -file doc.xml -xpath '//item[name]/description//keyword'
//	treeq -file doc.xml -cq 'Q(x) :- Lab[item](x), Child+(x, y), Lab[keyword](y).'
//	treeq -file doc.xml -datalog program.dl
//	cat doc.xml | treeq -xpath '//a' -strategy naive
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/tree"
)

func main() {
	var (
		file     = flag.String("file", "", "XML document to query (default: stdin)")
		xpathQ   = flag.String("xpath", "", "Core XPath query to evaluate")
		cqQ      = flag.String("cq", "", "conjunctive query (datalog syntax) to evaluate")
		datalogF = flag.String("datalog", "", "file containing a monadic datalog program")
		strategy = flag.String("strategy", "auto", "strategy: auto, naive, yannakakis, arc-consistency, rewrite")
		showPlan = flag.Bool("plan", false, "print the evaluation plan")
	)
	flag.Parse()

	src, err := readInput(*file)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{}
	switch *strategy {
	case "auto":
	case "naive":
		opts = append(opts, core.WithStrategy(core.Naive))
	case "yannakakis":
		opts = append(opts, core.WithStrategy(core.Yannakakis))
	case "arc-consistency":
		opts = append(opts, core.WithStrategy(core.ArcConsistency))
	case "rewrite":
		opts = append(opts, core.WithStrategy(core.RewriteFirst))
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	eng, err := core.FromXML(src, opts...)
	if err != nil {
		fatal(err)
	}
	doc := eng.Document()

	switch {
	case *xpathQ != "":
		nodes, plan, err := eng.XPath(*xpathQ)
		if err != nil {
			fatal(err)
		}
		printPlan(*showPlan, plan)
		for _, n := range nodes {
			printNode(doc, n)
		}
		fmt.Fprintf(os.Stderr, "%d nodes\n", len(nodes))
	case *cqQ != "":
		answers, plan, err := eng.CQ(*cqQ)
		if err != nil {
			fatal(err)
		}
		printPlan(*showPlan, plan)
		for _, a := range answers {
			for i, n := range a {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Printf("%d(%s)", doc.Pre(n), doc.Label(n))
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "%d answers\n", len(answers))
	case *datalogF != "":
		prog, err := os.ReadFile(*datalogF)
		if err != nil {
			fatal(err)
		}
		nodes, plan, err := eng.Datalog(string(prog))
		if err != nil {
			fatal(err)
		}
		printPlan(*showPlan, plan)
		for _, n := range nodes {
			printNode(doc, n)
		}
		fmt.Fprintf(os.Stderr, "%d nodes\n", len(nodes))
	default:
		fmt.Fprintln(os.Stderr, "treeq: one of -xpath, -cq, -datalog is required")
		flag.Usage()
		os.Exit(2)
	}
}

func readInput(file string) (string, error) {
	if file == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(file)
	return string(data), err
}

func printNode(doc *tree.Tree, n tree.NodeID) {
	fmt.Printf("%d\t%s\t%s\n", doc.Pre(n), doc.Label(n), doc.Text(n))
}

func printPlan(show bool, plan *core.Plan) {
	if show && plan != nil {
		fmt.Fprintf(os.Stderr, "plan: %s\n", plan)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "treeq: %v\n", err)
	os.Exit(1)
}
