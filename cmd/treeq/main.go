// Command treeq evaluates queries over an XML document using the core
// engine: Core XPath expressions, conjunctive queries in datalog syntax, and
// monadic datalog programs.  It prints the selected nodes (preorder index
// and label) and, with -plan, the technique the planner chose.
//
// Queries run through the engine's prepare/execute pipeline: the query is
// compiled once and executed -repeat times (default 1), so with -timing the
// compile-once/run-many speedup and the index-cache statistics are directly
// observable.
//
// Examples:
//
//	treeq -file doc.xml -xpath '//item[name]/description//keyword'
//	treeq -file doc.xml -cq 'Q(x) :- Lab[item](x), Child+(x, y), Lab[keyword](y).'
//	treeq -file doc.xml -datalog program.dl
//	treeq -file doc.xml -xpath '//item' -repeat 100 -timing
//	cat doc.xml | treeq -xpath '//a' -strategy naive
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/tree"
)

func main() {
	var (
		file     = flag.String("file", "", "XML document to query (default: stdin)")
		xpathQ   = flag.String("xpath", "", "Core XPath query to evaluate")
		cqQ      = flag.String("cq", "", "conjunctive query (datalog syntax) to evaluate")
		datalogF = flag.String("datalog", "", "file containing a monadic datalog program")
		twigQ    = flag.String("twig", "", "conjunctive //-rooted XPath to run through the twig route")
		strategy = flag.String("strategy", "auto", "strategy: auto, naive, yannakakis, arc-consistency, rewrite")
		showPlan = flag.Bool("plan", false, "print the evaluation plan")
		repeat   = flag.Int("repeat", 1, "execute the prepared query N times (compile once)")
		timing   = flag.Bool("timing", false, "print prepare/exec timings and index-cache statistics")
	)
	flag.Parse()

	src, err := readInput(*file)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{}
	switch *strategy {
	case "auto":
	case "naive":
		opts = append(opts, core.WithStrategy(core.Naive))
	case "yannakakis":
		opts = append(opts, core.WithStrategy(core.Yannakakis))
	case "arc-consistency":
		opts = append(opts, core.WithStrategy(core.ArcConsistency))
	case "rewrite":
		opts = append(opts, core.WithStrategy(core.RewriteFirst))
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	eng, err := core.FromXML(src, opts...)
	if err != nil {
		fatal(err)
	}
	doc := eng.Document()

	lang, text := "", ""
	switch {
	case *xpathQ != "":
		lang, text = core.LangXPath, *xpathQ
	case *cqQ != "":
		lang, text = core.LangCQ, *cqQ
	case *twigQ != "":
		lang, text = core.LangTwig, *twigQ
	case *datalogF != "":
		prog, err := os.ReadFile(*datalogF)
		if err != nil {
			fatal(err)
		}
		lang, text = core.LangDatalog, string(prog)
	default:
		fmt.Fprintln(os.Stderr, "treeq: one of -xpath, -cq, -twig, -datalog is required")
		flag.Usage()
		os.Exit(2)
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be >= 1, got %d", *repeat))
	}

	pq, err := eng.Prepare(lang, text)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var (
		res  *core.Result
		plan *core.Plan
	)
	for i := 0; i < *repeat; i++ {
		res, plan, err = pq.Exec(ctx)
		if err != nil {
			fatal(err)
		}
	}
	printPlan(*showPlan, plan)

	switch lang {
	case core.LangCQ, core.LangTwig:
		for _, a := range res.Answers {
			for i, n := range a {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Printf("%d(%s)", doc.Pre(n), doc.Label(n))
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "%d answers\n", len(res.Answers))
	default:
		for _, n := range res.Nodes {
			printNode(doc, n)
		}
		fmt.Fprintf(os.Stderr, "%d nodes\n", len(res.Nodes))
	}

	if *timing {
		stats := pq.Stats()
		fmt.Fprintf(os.Stderr, "timing: prepare=%v execs=%d total-exec=%v avg-exec=%v\n",
			stats.PrepareTime, stats.Execs, stats.TotalExec, stats.AvgExec())
		ix := eng.Index().Snapshot()
		fmt.Fprintf(os.Stderr, "index-cache: xasr-builds=%d pair-builds=%d pair-hits=%d label-list-builds=%d label-list-hits=%d mask-builds=%d mask-hits=%d\n",
			ix.XASRBuilds, ix.PairBuilds, ix.PairHits,
			ix.LabelListBuilds, ix.LabelListHits, ix.LabelMaskBuilds, ix.LabelMaskHits)
	}
}

func readInput(file string) (string, error) {
	if file == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(file)
	return string(data), err
}

func printNode(doc *tree.Tree, n tree.NodeID) {
	fmt.Printf("%d\t%s\t%s\n", doc.Pre(n), doc.Label(n), doc.Text(n))
}

func printPlan(show bool, plan *core.Plan) {
	if show && plan != nil {
		fmt.Fprintf(os.Stderr, "plan: %s\n", plan)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "treeq: %v\n", err)
	os.Exit(1)
}
