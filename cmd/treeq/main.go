// Command treeq evaluates queries over an XML document using the core
// engine: Core XPath expressions, conjunctive queries in datalog syntax, and
// monadic datalog programs.  It prints the selected nodes (preorder index
// and label) and, with -plan, the technique the planner chose.
//
// Queries run through the engine's prepare/execute pipeline: the query is
// compiled once and executed -repeat times (default 1), so with -timing the
// compile-once/run-many speedup and the index-cache statistics are directly
// observable.
//
// With -corpus DIR the command switches to corpus mode: every *.xml file in
// the directory is loaded into the sharded corpus query service and the query
// fans out to all documents through the service's plan cache, printing one
// match-count line per document.  -shards and -workers size the service;
// -repeat repeats the fan-out, so -timing shows the plan cache converting
// repeated one-shot calls into pure executions.
//
// In corpus mode, -update FILE demonstrates the live-update path: after the
// first fan-out pass the corpus document named after FILE's base name is
// replaced by FILE's contents (the engine swap re-prepares the document's
// warm plans), and the fan-out runs again against the new version.  With
// -timing the service counters show re-prepares instead of cold compiles.
//
// With -similar PATTERN the query is a top-k subtree similarity search: the
// pattern is an s-expression tree and the result is the k closest subtrees by
// tree edit distance, printed as ranked "node distance" lines (single
// document) or "doc node distance" lines (corpus mode, merged into a
// corpus-wide top-k).  -k overrides the result count; maxdist=N can be
// embedded in the pattern text ("maxdist=2 a(b c)").
//
// Examples:
//
//	treeq -file doc.xml -xpath '//item[name]/description//keyword'
//	treeq -file doc.xml -cq 'Q(x) :- Lab[item](x), Child+(x, y), Lab[keyword](y).'
//	treeq -file doc.xml -datalog program.dl
//	treeq -file doc.xml -stream '//item//keyword' -repeat 100 -timing
//	treeq -file doc.xml -similar 'description(keyword)' -k 5
//	treeq -corpus docs/ -xpath '//keyword' -shards 8 -workers 4 -timing
//	treeq -corpus docs/ -similar 'item(name description)' -k 3 -limit 10
//	treeq -corpus docs/ -xpath '//keyword' -update new/books.xml -timing
//	cat doc.xml | treeq -xpath '//a' -strategy naive
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/service"
	"repro/internal/tree"
)

func main() {
	var (
		file     = flag.String("file", "", "XML document to query (default: stdin)")
		corpus   = flag.String("corpus", "", "directory of *.xml documents to query as a corpus (overrides -file)")
		xpathQ   = flag.String("xpath", "", "Core XPath query to evaluate")
		cqQ      = flag.String("cq", "", "conjunctive query (datalog syntax) to evaluate")
		datalogF = flag.String("datalog", "", "file containing a monadic datalog program")
		twigQ    = flag.String("twig", "", "conjunctive //-rooted XPath to run through the twig route")
		streamQ  = flag.String("stream", "", "downward path query to run through the streaming transducer")
		similarQ = flag.String("similar", "", "s-expression pattern for top-k subtree similarity search (tree edit distance)")
		topK     = flag.Int("k", 0, "similarity mode: number of ranked results (0 = language default)")
		strategy = flag.String("strategy", "auto", "strategy: auto, naive, yannakakis, arc-consistency, rewrite")
		showPlan = flag.Bool("plan", false, "print the evaluation plan")
		repeat   = flag.Int("repeat", 1, "execute the prepared query N times (compile once)")
		timing   = flag.Bool("timing", false, "print prepare/exec timings and cache statistics")
		shards   = flag.Int("shards", 8, "corpus mode: number of engine-pool shards")
		workers  = flag.Int("workers", 0, "corpus mode: fan-out worker-pool width (0 = GOMAXPROCS)")
		docTO    = flag.Duration("doc-timeout", 0, "corpus mode: per-document execution budget (0 = none)")
		aggLimit = flag.Int("limit", 0, "corpus mode: print the merged (doc, node) aggregate capped at N matches (0 = per-document counts)")
		updateF  = flag.String("update", "", "corpus mode: after the first pass, update the document named after FILE's base name from FILE and re-run the fan-out")
	)
	flag.Parse()

	opts := []core.Option{}
	switch *strategy {
	case "auto":
	case "naive":
		opts = append(opts, core.WithStrategy(core.Naive))
	case "yannakakis":
		opts = append(opts, core.WithStrategy(core.Yannakakis))
	case "arc-consistency":
		opts = append(opts, core.WithStrategy(core.ArcConsistency))
	case "rewrite":
		opts = append(opts, core.WithStrategy(core.RewriteFirst))
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	lang, text := "", ""
	switch {
	case *xpathQ != "":
		lang, text = core.LangXPath, *xpathQ
	case *cqQ != "":
		lang, text = core.LangCQ, *cqQ
	case *twigQ != "":
		lang, text = core.LangTwig, *twigQ
	case *streamQ != "":
		lang, text = core.LangStream, *streamQ
	case *similarQ != "":
		lang, text = core.LangSimilar, *similarQ
		if *topK > 0 {
			text = fmt.Sprintf("k=%d %s", *topK, text)
		}
	case *datalogF != "":
		prog, err := os.ReadFile(*datalogF)
		if err != nil {
			fatal(err)
		}
		lang, text = core.LangDatalog, string(prog)
	default:
		fmt.Fprintln(os.Stderr, "treeq: one of -xpath, -cq, -twig, -stream, -similar, -datalog is required")
		flag.Usage()
		os.Exit(2)
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be >= 1, got %d", *repeat))
	}

	if *corpus != "" {
		runCorpus(*corpus, lang, text, opts, corpusRun{
			shards: *shards, workers: *workers, repeat: *repeat,
			showPlan: *showPlan, timing: *timing,
			docTimeout: *docTO, aggLimit: *aggLimit,
			updateFile: *updateF,
		})
		return
	}
	if *updateF != "" {
		fatal(fmt.Errorf("-update requires corpus mode (-corpus DIR)"))
	}

	src, err := readInput(*file)
	if err != nil {
		fatal(err)
	}
	eng, err := core.FromXML(src, opts...)
	if err != nil {
		fatal(err)
	}
	doc := eng.Document()

	pq, err := eng.Prepare(lang, text)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var (
		res  *core.Result
		plan *core.Plan
	)
	for i := 0; i < *repeat; i++ {
		res, plan, err = pq.Exec(ctx)
		if err != nil {
			fatal(err)
		}
	}
	printPlan(*showPlan, plan)

	switch lang {
	case core.LangSimilar:
		// Ranked: one line per hit, closest first.
		for _, h := range res.Hits {
			fmt.Printf("%d(%s)\t%d\n", doc.Pre(h.Node), doc.Label(h.Node), h.Distance)
		}
		fmt.Fprintf(os.Stderr, "%d hits\n", len(res.Hits))
	case core.LangCQ, core.LangTwig:
		for _, a := range res.Answers {
			for i, n := range a {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Printf("%d(%s)", doc.Pre(n), doc.Label(n))
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "%d answers\n", len(res.Answers))
	default:
		for _, n := range res.Nodes {
			printNode(doc, n)
		}
		fmt.Fprintf(os.Stderr, "%d nodes\n", len(res.Nodes))
	}

	if *timing {
		stats := pq.Stats()
		fmt.Fprintf(os.Stderr, "timing: prepare=%v execs=%d total-exec=%v avg-exec=%v\n",
			stats.PrepareTime, stats.Execs, stats.TotalExec, stats.AvgExec())
		ix := eng.Index().Snapshot()
		fmt.Fprintf(os.Stderr, "index-cache: multi-labeled=%t xasr-builds=%d pair-builds=%d pair-hits=%d pair-evictions=%d label-list-builds=%d label-list-hits=%d mask-builds=%d mask-hits=%d label-row-builds=%d label-row-hits=%d\n",
			ix.MultiLabeled, ix.XASRBuilds, ix.PairBuilds, ix.PairHits, ix.PairEvictions,
			ix.LabelListBuilds, ix.LabelListHits, ix.LabelMaskBuilds, ix.LabelMaskHits,
			ix.LabelRowBuilds, ix.LabelRowHits)
		if lang == core.LangSimilar {
			printSimilarStats()
		}
		printPoolStats()
	}
}

// printSimilarStats reports the similarity route's pruning funnel: candidates
// considered, candidates eliminated per lower bound, and full TED kernel
// calls (process-wide, matching /statusz's "similar" section).
func printSimilarStats() {
	candidates, sizePruned, histPruned, kernelCalls := core.SimilarCounters()
	fmt.Fprintf(os.Stderr, "similar: candidates=%d size_pruned=%d hist_pruned=%d ted_kernel_calls=%d\n",
		candidates, sizePruned, histPruned, kernelCalls)
}

// printPoolStats reports the process-wide hot-path allocation pools under the
// same key names the server's /statusz marshals (obsv.PoolCounters is the
// single source of truth for both surfaces).
func printPoolStats() {
	p := obsv.Pools()
	fmt.Fprintf(os.Stderr, "pools: bitset_pool_hits=%d bitset_pool_misses=%d relstore_side_hits=%d relstore_side_misses=%d ted_dp_hits=%d ted_dp_misses=%d\n",
		p.BitsetPoolHits, p.BitsetPoolMisses, p.RelstoreSideHits, p.RelstoreSideMisses,
		p.TedDPHits, p.TedDPMisses)
}

// corpusRun bundles the corpus-mode knobs.
type corpusRun struct {
	shards, workers, repeat int
	showPlan, timing        bool
	docTimeout              time.Duration
	aggLimit                int
	updateFile              string
}

// runCorpus loads every *.xml file under dir into a corpus service and fans
// the query out to all documents, -repeat times.  With -limit it prints the
// merged (document, node) aggregate instead of per-document counts; with
// -doc-timeout every document runs under its own execution budget.
func runCorpus(dir, lang, text string, engOpts []core.Option, run corpusRun) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no *.xml documents under %q", dir))
	}
	svc := service.New(
		service.WithShards(run.shards),
		service.WithWorkers(run.workers),
		service.WithEngineOptions(engOpts...),
	)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		if err := svc.AddXML(filepath.Base(p), string(data)); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	var copts []service.CorpusOption
	if run.docTimeout > 0 {
		copts = append(copts, service.WithDocTimeout(run.docTimeout))
	}
	pass := func() int {
		var results []service.DocResult
		for i := 0; i < run.repeat; i++ {
			results = svc.QueryCorpus(ctx, lang, text, copts...)
		}
		return printCorpusResults(results, lang, run)
	}

	failed := pass()
	if run.updateFile != "" {
		// Live-update path: swap the named document in place (warm plans are
		// re-prepared, not dropped) and fan out again against the new version.
		data, err := os.ReadFile(run.updateFile)
		if err != nil {
			fatal(err)
		}
		name := filepath.Base(run.updateFile)
		outcome, err := svc.UpdateDocXML(name, string(data))
		if err != nil {
			fatal(err)
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "treeq: updated %s to version %d, %s/%s (%d plans re-prepared, %d skipped re-grounding, %d re-prepare failures)\n",
			name, outcome.Version, outcome.Mode(), outcome.Kind,
			st.PlanReprepares, st.PlansSkippedByLabelSet, st.PlanReprepareFailures)
		failed += pass()
	}
	if run.timing {
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "service: docs=%d queries=%d updates=%d (patched=%d rebuilt=%d) reprepares=%d plan-cache hits=%d misses=%d evictions=%d size=%d/%d shard-sizes=%v\n",
			st.Docs, st.Queries, st.Updates, st.PatchedUpdates, st.RebuildUpdates, st.PlanReprepares,
			st.PlanCacheHits, st.PlanCacheMisses,
			st.PlanCacheEvictions, st.PlanCacheSize, st.PlanCacheCap,
			svc.PlanShardSizes())
		if lang == core.LangSimilar {
			printSimilarStats()
		}
		printPoolStats()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// printCorpusResults prints one fan-out pass (per-document counts, or the
// merged aggregate with -limit) and returns the number of failed documents.
func printCorpusResults(results []service.DocResult, lang string, run corpusRun) int {
	failed := 0
	if run.aggLimit > 0 {
		agg := service.Aggregate(results, run.aggLimit)
		failed = len(agg.Failed)
		for _, f := range agg.Failed {
			fmt.Fprintf(os.Stderr, "treeq: %s: %v\n", f.Doc, f.Err)
		}
		// Ranked hits come out of the aggregate as the corpus-wide top-k in
		// (distance, doc, node) order.
		for _, h := range agg.Hits {
			fmt.Printf("%s\t%d\t%d\n", h.Doc, h.Node, h.Distance)
		}
		for _, n := range agg.Nodes {
			fmt.Printf("%s\t%d\n", n.Doc, n.Node)
		}
		for _, a := range agg.Answers {
			fmt.Printf("%s\t%v\n", a.Doc, a.Answer)
		}
		fmt.Fprintf(os.Stderr, "%d documents, %d failed, %d matches (%d shown, truncated=%v)\n",
			agg.Docs, failed, agg.Total, len(agg.Hits)+len(agg.Nodes)+len(agg.Answers), agg.Truncated)
		return failed
	}
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "treeq: %s: %v\n", r.Doc, r.Err)
			continue
		}
		n := len(r.Result.Nodes)
		switch lang {
		case core.LangCQ, core.LangTwig:
			n = len(r.Result.Answers)
		case core.LangSimilar:
			n = len(r.Result.Hits)
		}
		fmt.Printf("%s\tv%d\t%d\n", r.Doc, r.Version, n)
		if run.showPlan && r.Plan != nil {
			fmt.Fprintf(os.Stderr, "plan[%s]: %s\n", r.Doc, r.Plan)
		}
	}
	fmt.Fprintf(os.Stderr, "%d documents, %d failed\n", len(results), failed)
	return failed
}

func readInput(file string) (string, error) {
	if file == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(file)
	return string(data), err
}

func printNode(doc *tree.Tree, n tree.NodeID) {
	fmt.Printf("%d\t%s\t%s\n", doc.Pre(n), doc.Label(n), doc.Text(n))
}

func printPlan(show bool, plan *core.Plan) {
	if show && plan != nil {
		fmt.Fprintf(os.Stderr, "plan: %s\n", plan)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "treeq: %v\n", err)
	os.Exit(1)
}
