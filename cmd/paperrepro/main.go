// Command paperrepro regenerates the figures, tables, and worked examples of
// the paper from the library (experiment index E1-E15 of DESIGN.md) and
// prints them to stdout.  Run "paperrepro -exp all" to regenerate everything
// or "-exp E7" for a single artifact; the timing/scaling experiments proper
// live in the Go benchmarks (bench_test.go), this command reproduces the
// qualitative artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/arccons"
	"repro/internal/cq"
	"repro/internal/hornsat"
	"repro/internal/labeling"
	"repro/internal/mdatalog"
	"repro/internal/rewrite"
	"repro/internal/stream"
	"repro/internal/tree"
	"repro/internal/treewidth"
	"repro/internal/twigjoin"
	"repro/internal/workload"
	"repro/internal/xpath"
	"repro/internal/yannakakis"
)

var experiments = map[string]func(){
	"E1":  e1Figure1,
	"E2":  e2Figure2,
	"E3":  e3Minoux,
	"E4":  e4MonadicDatalog,
	"E5":  e5Treewidth,
	"E6":  e6Yannakakis,
	"E7":  e7Table1,
	"E9":  e9XProperty,
	"E10": e10ArcConsistency,
	"E11": e11TwigJoin,
	"E12": e12Dichotomy,
	"E13": e13ComplexityMap,
	"E14": e14Streaming,
}

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E14) or 'all'")
	flag.Parse()
	if *exp == "all" {
		order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E9", "E10", "E11", "E12", "E13", "E14"}
		for _, id := range order {
			runExp(id)
		}
		return
	}
	runExp(*exp)
}

func runExp(id string) {
	f, ok := experiments[strings.ToUpper(id)]
	if !ok {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q (E8/E15 are benchmark-only; see bench_test.go)\n", id)
		os.Exit(2)
	}
	fmt.Printf("================ %s ================\n", strings.ToUpper(id))
	f()
	fmt.Println()
}

// figure1Tree is the 6-node tree of Figure 1.
func figure1Tree() *tree.Tree {
	b := tree.NewBuilder()
	n1 := b.AddRoot("n1")
	b.AddChild(n1, "n2")
	n3 := b.AddChild(n1, "n3")
	b.AddChild(n1, "n4")
	b.AddChild(n3, "n5")
	b.AddChild(n3, "n6")
	return b.MustBuild()
}

// figure2Tree is the 7-node tree of Figure 2 / Example 2.1.
func figure2Tree() *tree.Tree { return tree.MustParseSexpr("a(b(a c) a(b d))") }

func e1Figure1() {
	fmt.Println("Figure 1: an unranked tree and its FirstChild/NextSibling representation")
	t := figure1Tree()
	fmt.Println(t.Indented())
	fmt.Println(t.DOT())
}

func e2Figure2() {
	fmt.Println("Figure 2 / Example 2.1: XASR and structural joins")
	t := figure2Tree()
	x := labeling.BuildXASR(t)
	fmt.Println(x)
	desc := x.StructuralJoin(tree.Descendant, "", "")
	fmt.Printf("descendant view (theta-join on pre/post): %d pairs\n", desc.Len())
	child := x.StructuralJoin(tree.Child, "", "")
	fmt.Printf("child view (parent_pre join):             %d pairs\n", child.Len())
	closure := labeling.DescendantPairsByClosure(t)
	fmt.Printf("transitive-closure baseline:              %d pairs (same set, asymptotically slower)\n", closure.Len())
}

func e3Minoux() {
	fmt.Println("Figure 3 / Example 3.3: Minoux' linear-time Horn-SAT algorithm")
	p := hornsat.NewProgram()
	for i := 0; i < 7; i++ {
		p.NewPred("")
	}
	p.AddFact(1)
	p.AddFact(2)
	p.AddFact(3)
	p.AddClause(4, 1)
	p.AddClause(5, 3, 4)
	p.AddClause(6, 2, 5)
	ts := p.InitTrace()
	fmt.Printf("initialization: size=%v head=%v q=%v\n", ts.Size, ts.Head, ts.Queue)
	for x, rs := range ts.Rules {
		if len(rs) > 0 {
			fmt.Printf("  rules[%d] = %v\n", x, rs)
		}
	}
	m := p.Solve()
	fmt.Printf("derivation order: %v (all of 1..6 true, as in the example)\n", m.Derived)
}

func e4MonadicDatalog() {
	fmt.Println("Example 3.1 / Theorem 3.2: monadic datalog via TMNF grounding")
	prog := mdatalog.MustParse(`
P0(x) :- Lab[L](x).
P0(x) :- NextSibling(x, y), P0(y).
P(x)  :- FirstChild(x, y), P0(y).
P0(x) :- P(x).
?- P.`)
	t := tree.MustParseSexpr("a(b(L c) a(b d))")
	tm, err := prog.ToTMNF()
	must(err)
	g, err := tm.Ground(t)
	must(err)
	fmt.Printf("program size |P| = %d, |Dom| = %d, ground Horn program size = %d\n", prog.Size(), t.Len(), g.Horn.Size())
	nodes, _, err := mdatalog.Evaluate(prog, t)
	must(err)
	fmt.Printf("P (nodes with an L-labeled proper descendant): preorders %v\n", pres(t, nodes))
}

func e5Treewidth() {
	fmt.Println("Figure 4: (Child, NextSibling)-structures have tree-width 2")
	for _, spec := range []workload.TreeSpec{
		{Nodes: 15, Seed: 1}, {Nodes: 200, Seed: 2}, {Nodes: 1000, Seed: 3, MaxFanout: 8},
	} {
		t := workload.RandomTree(spec)
		g := treewidth.DataGraph(t)
		d := treewidth.Decompose(g, treewidth.MinFill)
		must(d.Validate(g))
		fmt.Printf("  %5d nodes: decomposition width %d (valid)\n", t.Len(), d.Width())
	}
}

func e6Yannakakis() {
	fmt.Println("Prop. 4.2: acyclic conjunctive queries via Yannakakis' algorithm")
	doc := workload.SiteDocument(workload.DocSpec{Items: 200, Regions: 5, DescriptionDepth: 2, Seed: 1})
	q := cq.MustParse("Q(i, k) :- Lab[item](i), Child(i, d), Lab[description](d), Child+(d, k), Lab[keyword](k).")
	start := time.Now()
	ans, stats, err := yannakakis.EvaluateWithStats(q, doc)
	must(err)
	fmt.Printf("  document: %d nodes; query: %s\n", doc.Len(), q)
	fmt.Printf("  %d answers in %v; %d relations, %d rows materialized, %d after full reducer, %d semijoins\n",
		len(ans), time.Since(start).Round(time.Microsecond), stats.Relations, stats.MaterializedRows, stats.RowsAfterReduce, stats.SemijoinsRun)
}

func e7Table1() {
	fmt.Println("Table 1: satisfiability of R(x,z) ∧ S(y,z) ∧ x <pre y (recomputed by exhaustive search over all trees with ≤4 nodes)")
	axes := rewrite.Table1Axes()
	computed := rewrite.Table1Computed(4)
	fmt.Printf("%-14s", "R \\ S")
	for _, s := range axes {
		fmt.Printf("%-14s", s)
	}
	fmt.Println()
	for _, r := range axes {
		fmt.Printf("%-14s", r.String())
		for _, s := range axes {
			cell := "unsat"
			if computed[[2]tree.Axis{r, s}] {
				cell = "sat"
			}
			closed := "unsat"
			if rewrite.PairSatisfiable(r, s) {
				closed = "sat"
			}
			mark := ""
			if cell != closed {
				mark = " (MISMATCH)"
			}
			fmt.Printf("%-14s", cell+mark)
		}
		fmt.Println()
	}
}

func e9XProperty() {
	fmt.Println("Figure 5 / Prop. 6.6: which axes have the X-property w.r.t. which order (checked on random trees)")
	t := workload.RandomTree(workload.TreeSpec{Nodes: 16, Seed: 4})
	axes := []tree.Axis{tree.Child, tree.Descendant, tree.DescendantOrSelf, tree.NextSiblingAxis,
		tree.FollowingSibling, tree.FollowingSiblingOrSelf, tree.Following}
	fmt.Printf("%-18s %-8s %-8s %-8s  claimed order (Prop. 6.6)\n", "axis", "<pre", "<post", "<bflr")
	for _, a := range axes {
		row := fmt.Sprintf("%-18s", a)
		for _, o := range tree.AllOrders() {
			has := arccons.HasXProperty(t, a, o)
			row += fmt.Sprintf(" %-8v", has)
		}
		claim, ok := arccons.XPropertyOrder(a)
		claimed := "none"
		if ok {
			claimed = claim.String()
		}
		fmt.Printf("%s  %s\n", row, claimed)
	}
}

func e10ArcConsistency() {
	fmt.Println("Theorem 6.5 / Prop. 6.2: Boolean CQ evaluation by arc-consistency over tau1")
	doc := workload.SiteDocument(workload.DocSpec{Items: 100, Regions: 4, DescriptionDepth: 2, Seed: 2})
	q := cq.MustParse("Q :- Lab[region](r), Child+(r, i), Lab[item](i), Child+(i, k), Lab[keyword](k).")
	sat, err := arccons.SatisfiableX(q, doc)
	must(err)
	pv, ok, err := arccons.MaxPreValuation(q, doc)
	must(err)
	fmt.Printf("  query %s\n  satisfiable: %v; maximal arc-consistent pre-valuation exists: %v, total candidates %d\n",
		q, sat, ok, pv.Size())
}

func e11TwigJoin() {
	fmt.Println("Figure 6 / Prop. 6.10 / holistic twig joins: //item[name]/description//keyword")
	doc := workload.SiteDocument(workload.DocSpec{Items: 100, Regions: 4, DescriptionDepth: 2, Seed: 3})
	tw := &twigjoin.Twig{
		Labels: []string{"item", "name", "description", "keyword"},
		Parent: []int{-1, 0, 0, 2},
		Edge:   []twigjoin.EdgeKind{twigjoin.DescendantEdge, twigjoin.ChildEdge, twigjoin.ChildEdge, twigjoin.DescendantEdge},
	}
	ms, err := twigjoin.MatchTwig(doc, tw)
	must(err)
	ans, err := arccons.EnumerateAcyclic(tw.ToCQ(), doc)
	must(err)
	fmt.Printf("  twig %s: %d matches by PathStack decomposition, %d by arc-consistency enumeration (must agree)\n",
		tw, len(ms), len(ans))
}

func e12Dichotomy() {
	fmt.Println("Theorem 6.8: the tractability dichotomy over axis signatures")
	sets := [][]tree.Axis{
		{tree.Descendant},
		{tree.Descendant, tree.DescendantOrSelf},
		{tree.Following},
		{tree.Child, tree.NextSiblingAxis, tree.FollowingSibling, tree.FollowingSiblingOrSelf},
		{tree.Child, tree.Descendant},
		{tree.Descendant, tree.Following},
		{tree.Child, tree.Following},
	}
	for _, axes := range sets {
		sig, order := arccons.ClassifySignature(axes)
		verdict := "NP-complete (no common X-property order)"
		if sig != arccons.SignatureNone {
			verdict = fmt.Sprintf("in PTime via %v w.r.t. %v", sig, order)
		}
		fmt.Printf("  %-60v %s\n", axes, verdict)
	}
}

func e13ComplexityMap() {
	fmt.Println("Figure 7 (empirical slice): the same query through different language evaluators")
	doc := workload.SiteDocument(workload.DocSpec{Items: 300, Regions: 6, DescriptionDepth: 2, Seed: 5})
	xq := "//item[name]/description//keyword"
	timeIt := func(name string, f func() int) {
		start := time.Now()
		n := f()
		fmt.Printf("  %-38s %6d results  %10v\n", name, n, time.Since(start).Round(time.Microsecond))
	}
	expr := xpath.MustParse(xq)
	timeIt("Core XPath, set-at-a-time", func() int { return len(xpath.Query(expr, doc)) })
	timeIt("Core XPath, naive semantics", func() int { return len(xpath.QueryNaive(expr, doc)) })
	q, err := xpath.ToCQ(expr)
	must(err)
	timeIt("as CQ, arc-consistency enumeration", func() int {
		ans, err := arccons.EnumerateAcyclic(q, doc)
		must(err)
		return len(ans)
	})
	timeIt("as CQ, Yannakakis", func() int {
		ans, err := yannakakis.Evaluate(q, doc)
		must(err)
		return len(ans)
	})
	timeIt("as CQ, naive backtracking", func() int { return len(cq.EvaluateNaive(q, doc)) })
	prog := `Desc(x) :- Lab[description](x).
Under(x) :- Desc(y), Child(y, x).
Under(x) :- Under(y), Child(y, x).
K(x) :- Under(x), Lab[keyword](x).
?- K.`
	timeIt("as monadic datalog, Horn-SAT", func() int {
		nodes, _, err := mdatalog.Evaluate(mdatalog.MustParse(prog), doc)
		must(err)
		return len(nodes)
	})
}

func e14Streaming() {
	fmt.Println("Section 7 streaming bounds: memory scales with document depth, not size")
	m := stream.MustCompile(xpath.MustParse("//a//a"))
	for _, shape := range []struct {
		name string
		doc  *tree.Tree
	}{
		{"wide (depth 2)", workload.WideTree(50_000, "a")},
		{"random (shallow)", workload.RandomTree(workload.TreeSpec{Nodes: 50_000, Seed: 1, Alphabet: []string{"a"}})},
		{"path (depth = size)", workload.PathTree(50_000, "a")},
	} {
		_, stats, err := m.RunOnTree(shape.doc)
		must(err)
		fmt.Printf("  %-22s size %6d  depth %6d  max state cells %7d  matches %d\n",
			shape.name, shape.doc.Len(), stats.MaxDepth, stats.MaxStateCells, stats.Matches)
	}
}

func pres(t *tree.Tree, ns []tree.NodeID) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = t.Pre(n)
	}
	return out
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}
