// Command treeqlint runs the project's static-analysis suite (see
// docs/ARCHITECTURE.md, "Static analysis").
//
// Two modes:
//
//	treeqlint ./...                        standalone: loads packages by
//	                                       re-invoking `go vet -vettool` on
//	                                       itself, so test files and the
//	                                       whole dependency graph come from
//	                                       the real toolchain loader
//	go vet -vettool=$(which treeqlint) p   vet-tool: cmd/go drives it one
//	                                       package at a time over the vet
//	                                       config protocol
//
// Passing an analyzer name as a flag (-poolpair, -errcode, ...) restricts
// the run to the named analyzers.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/checker"
)

func main() {
	// Vet-tool mode: cmd/go talks the -V/-flags/*.cfg protocol.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-V") || strings.HasPrefix(arg, "--V") ||
			arg == "-flags" || arg == "--flags" || strings.HasSuffix(arg, ".cfg") {
			checker.Main(analyzers.All()...)
			return // unreachable; Main exits
		}
	}

	// Standalone mode: treeqlint [analyzer flags] [package patterns].
	// Delegate loading to the toolchain by re-execing `go vet` with this
	// binary as the vet tool — one loader for both modes, and _test.go files
	// are analyzed for free.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "treeqlint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := []string{"vet", "-vettool=" + exe}
	rest := os.Args[1:]
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	args = append(args, rest...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "treeqlint: %v\n", err)
		os.Exit(1)
	}
}
