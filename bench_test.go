// Package repro holds the top-level benchmark harness: one benchmark family
// per experiment of DESIGN.md / EXPERIMENTS.md, each regenerating the
// measurement behind a figure, table, or complexity claim of the paper.
// Run with:  go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/arccons"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/hornsat"
	"repro/internal/index"
	"repro/internal/labeling"
	"repro/internal/mdatalog"
	"repro/internal/relstore"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/tree"
	"repro/internal/treewidth"
	"repro/internal/twigjoin"
	"repro/internal/workload"
	"repro/internal/xpath"
	"repro/internal/yannakakis"
)

// --- E2: structural joins over the XASR (Figure 2 / Example 2.1) -----------

func BenchmarkE2StructuralJoin(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		t := workload.RandomTree(workload.TreeSpec{Nodes: n, Seed: 1, Alphabet: []string{"a", "b", "c", "d", "e"}})
		x := labeling.BuildXASR(t)
		b.Run(fmt.Sprintf("merge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.StructuralJoin(tree.Descendant, "a", "b")
			}
		})
		b.Run(fmt.Sprintf("nestedloop/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.StructuralJoinNestedLoop(tree.Descendant, "a", "b")
			}
		})
	}
	// The transitive-closure baseline is only feasible on small trees.
	small := workload.RandomTree(workload.TreeSpec{Nodes: 1000, Seed: 1, Alphabet: []string{"a", "b"}})
	b.Run("closure-baseline/n=1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			labeling.DescendantPairsByClosure(small)
		}
	})
}

// --- E3: Minoux' linear-time Horn-SAT (Figure 3) ---------------------------

func randomHorn(nPreds, nClauses int, seed int64) *hornsat.Program {
	p := hornsat.NewProgramWithPreds(nPreds)
	s := seed
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		v := int(s % int64(n))
		if v < 0 {
			v = -v
		}
		return v
	}
	for i := 0; i < nClauses; i++ {
		head := hornsat.Pred(next(nPreds))
		k := next(3)
		body := make([]hornsat.Pred, k)
		for j := range body {
			body[j] = hornsat.Pred(next(nPreds))
		}
		p.AddClause(head, body...)
	}
	for i := 0; i < nPreds/20+1; i++ {
		p.AddFact(hornsat.Pred(next(nPreds)))
	}
	return p
}

func BenchmarkE3HornSAT(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 400_000} {
		p := randomHorn(n/2, n, 7)
		b.Run(fmt.Sprintf("minoux/clauses=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Solve()
			}
		})
	}
	p := randomHorn(5_000, 10_000, 7)
	b.Run("naive-fixpoint/clauses=10000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SolveNaive()
		}
	})
}

// --- E4: monadic datalog in O(|P| * |Dom|) (Theorem 3.2) -------------------

const ancestorProgram = `
P0(x) :- Lab[L](x).
P0(x) :- NextSibling(x, y), P0(y).
P(x)  :- FirstChild(x, y), P0(y).
P0(x) :- P(x).
?- P.`

func BenchmarkE4MonadicDatalog(b *testing.B) {
	prog := mdatalog.MustParse(ancestorProgram)
	for _, n := range []int{1_000, 10_000, 100_000} {
		t := workload.RandomTree(workload.TreeSpec{Nodes: n, Seed: 2, Alphabet: []string{"a", "b", "L"}})
		b.Run(fmt.Sprintf("hornSAT/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mdatalog.Evaluate(prog, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	small := workload.RandomTree(workload.TreeSpec{Nodes: 60, Seed: 2, Alphabet: []string{"a", "b", "L"}})
	b.Run("naive-fixpoint/n=60", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.EvaluateNaive(prog, small); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5: tree-width of data graphs (Figure 4) -------------------------------

func BenchmarkE5Treewidth(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		t := workload.RandomTree(workload.TreeSpec{Nodes: n, Seed: 3})
		g := treewidth.DataGraph(t)
		b.Run(fmt.Sprintf("min-fill/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := treewidth.Decompose(g, treewidth.MinFill)
				if d.Width() > 2 {
					b.Fatalf("width %d", d.Width())
				}
			}
		})
	}
}

// --- E6: acyclic CQs via Yannakakis (Theorem 4.1 / Prop. 4.2) ---------------

func twigCQ() *cq.Query {
	return cq.MustParse("Q(i, k) :- Lab[item](i), Child(i, d), Lab[description](d), Child+(d, k), Lab[keyword](k).")
}

func BenchmarkE6Yannakakis(b *testing.B) {
	q := twigCQ()
	for _, items := range []int{100, 400, 1600} {
		doc := workload.SiteDocument(workload.DocSpec{Items: items, Regions: 6, DescriptionDepth: 2, Seed: 4})
		b.Run(fmt.Sprintf("yannakakis/items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := yannakakis.Evaluate(q, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	small := workload.SiteDocument(workload.DocSpec{Items: 100, Regions: 6, DescriptionDepth: 2, Seed: 4})
	b.Run("naive-backtracking/items=100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cq.EvaluateNaive(q, small)
		}
	})
}

// --- E8: rewriting CQs into acyclic unions (Theorem 5.1) --------------------

func starQuery(k int) *cq.Query {
	labels := []string{"a", "b", "c", "d", "e"}
	q := &cq.Query{Head: []cq.Variable{"z"}}
	q.Labels = append(q.Labels, cq.LabelAtom{Var: "z", Label: "e"})
	for i := 0; i < k; i++ {
		v := cq.Variable(fmt.Sprintf("x%d", i))
		q.Labels = append(q.Labels, cq.LabelAtom{Var: v, Label: labels[i%4]})
		q.Axes = append(q.Axes, cq.AxisAtom{Axis: tree.Descendant, From: v, To: "z"})
	}
	return q
}

func BenchmarkE8Rewrite(b *testing.B) {
	doc := workload.RandomTree(workload.TreeSpec{Nodes: 400, Seed: 5, Alphabet: []string{"a", "b", "c", "d", "e"}})
	for _, k := range []int{2, 3, 4} {
		q := starQuery(k)
		b.Run(fmt.Sprintf("toAcyclicUnion/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.ToAcyclicUnion(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("evaluateViaRewrite/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rewrite.EvaluateViaRewrite(q, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: arc-consistency / X-property evaluation (Theorem 6.5) -------------

func BenchmarkE10ArcConsistency(b *testing.B) {
	q := cq.MustParse("Q :- Lab[region](r), Child+(r, i), Lab[item](i), Child+(i, k), Lab[keyword](k), Child+(r, k).")
	for _, items := range []int{100, 400} {
		doc := workload.SiteDocument(workload.DocSpec{Items: items, Regions: 6, DescriptionDepth: 2, Seed: 6})
		b.Run(fmt.Sprintf("satisfiableX/items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := arccons.SatisfiableX(q, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive-backtracking/items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cq.Satisfiable(q, doc)
			}
		})
	}
}

// --- E11: holistic twig joins vs. the generic routes (Prop. 6.10) -----------

func BenchmarkE11TwigJoin(b *testing.B) {
	tw := &twigjoin.Twig{
		Labels: []string{"item", "name", "description", "keyword"},
		Parent: []int{-1, 0, 0, 2},
		Edge:   []twigjoin.EdgeKind{twigjoin.DescendantEdge, twigjoin.ChildEdge, twigjoin.ChildEdge, twigjoin.DescendantEdge},
	}
	q := tw.ToCQ()
	for _, items := range []int{200, 800} {
		doc := workload.SiteDocument(workload.DocSpec{Items: items, Regions: 6, DescriptionDepth: 2, Seed: 7})
		b.Run(fmt.Sprintf("pathstack/items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := twigjoin.MatchTwig(doc, tw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("yannakakis/items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := yannakakis.Evaluate(q, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: Core XPath evaluation strategies (Figure 7, combined complexity) --

func BenchmarkE13XPath(b *testing.B) {
	queries := map[string]string{
		"twig":     "//item[name]/description//keyword",
		"negation": "//item[not(mailbox)]/name",
		"union":    "//keyword | //emailaddress",
	}
	for _, items := range []int{500, 2000} {
		doc := workload.SiteDocument(workload.DocSpec{Items: items, Regions: 6, DescriptionDepth: 2, Seed: 8})
		for name, qs := range queries {
			expr := xpath.MustParse(qs)
			b.Run(fmt.Sprintf("set-at-a-time/%s/items=%d", name, items), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					xpath.Query(expr, doc)
				}
			})
			b.Run(fmt.Sprintf("naive/%s/items=%d", name, items), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					xpath.QueryNaive(expr, doc)
				}
			})
		}
	}
}

// --- E14: streaming forward XPath, memory Theta(depth) ----------------------

func BenchmarkE14Streaming(b *testing.B) {
	m := stream.MustCompile(xpath.MustParse("//item//keyword"))
	shapes := map[string]*tree.Tree{
		"wide-50k": workload.WideTree(50_000, "item"),
		"site-50k": workload.SiteDocument(workload.DocSpec{Items: 4200, Regions: 6, DescriptionDepth: 2, Seed: 9}),
		"path-50k": workload.PathTree(50_000, "item"),
	}
	for name, doc := range shapes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.RunOnTree(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: the dichotomy classifier is constant-time bookkeeping -------------

func BenchmarkE12Classify(b *testing.B) {
	sets := [][]tree.Axis{
		{tree.Descendant, tree.DescendantOrSelf},
		{tree.Following},
		{tree.Child, tree.NextSiblingAxis, tree.FollowingSibling},
		{tree.Child, tree.Descendant},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			arccons.ClassifySignature(s)
		}
	}
}

// --- Prepared-query pipeline: compile once, execute many ---------------------
//
// The BenchmarkPrepared* family measures the repeated-query workload that the
// prepare/execute refactor targets: "prepared" compiles once (outside the
// timed loop) and only executes; "reparse" pays parse + plan + derived
// structures on every call, which is what the legacy one-shot API does.
// These numbers are the perf-trajectory baseline for future scaling PRs.

func BenchmarkPreparedXPath(b *testing.B) {
	doc := workload.SiteDocument(workload.DocSpec{Items: 500, Regions: 6, DescriptionDepth: 2, Seed: 20})
	eng := core.New(doc)
	const q = "//item[name]/description//keyword"
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		pq, err := eng.Prepare(core.LangXPath, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pq.Exec(ctx); err != nil { // warm the index cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pq.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.XPath(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreparedCQRewrite(b *testing.B) {
	// A cyclic star query routed through Theorem 5.1: the acyclic-union
	// rewriting dominates the per-call cost, so preparing once (the union is
	// rewritten at prepare time) must beat re-planning per call by a wide
	// margin on this repeated-query workload.
	doc := workload.RandomTree(workload.TreeSpec{Nodes: 60, Seed: 21, Alphabet: []string{"a", "b", "c", "d", "e"}})
	eng := core.New(doc, core.WithStrategy(core.RewriteFirst))
	q := starQuery(4)
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		pq, err := eng.PrepareCQ(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pq.Exec(ctx); err != nil { // warm the index cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pq.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.EvaluateCQ(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreparedDatalog(b *testing.B) {
	// Prepared datalog grounds the TMNF program over the document once; each
	// execution only solves the immutable ground Horn program.
	doc := workload.RandomTree(workload.TreeSpec{Nodes: 20_000, Seed: 22, Alphabet: []string{"a", "b", "L"}})
	eng := core.New(doc)
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		pq, err := eng.Prepare(core.LangDatalog, ancestorProgram)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pq.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Datalog(ancestorProgram); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreparedYannakakisIndexed(b *testing.B) {
	// Single-labeled tree, so repeated executions reuse the cached XASR
	// structural joins instead of re-materializing atom relations.
	doc := workload.RandomTree(workload.TreeSpec{Nodes: 4000, Seed: 23, Alphabet: []string{"a", "b", "c", "d", "e"}})
	eng := core.New(doc, core.WithStrategy(core.Yannakakis))
	q := cq.MustParse("Q(x, y) :- Lab[a](x), Child+(x, y), Lab[b](y).")
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		pq, err := eng.PrepareCQ(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pq.Exec(ctx); err != nil { // warm the index cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pq.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.Evaluate(q, doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreparedBatch(b *testing.B) {
	// A mixed pool of prepared queries executed through the worker-pool batch
	// API at increasing parallelism over one shared engine.
	doc := workload.SiteDocument(workload.DocSpec{Items: 300, Regions: 6, DescriptionDepth: 2, Seed: 24})
	eng := core.New(doc)
	texts := []string{
		"//item[name]/description//keyword",
		"//item[not(mailbox)]/name",
		"//keyword | //emailaddress",
		"//region//item[name]",
	}
	var pool []*core.PreparedQuery
	for _, t := range texts {
		for i := 0; i < 4; i++ {
			pq, err := eng.Prepare(core.LangXPath, t)
			if err != nil {
				b.Fatal(err)
			}
			pool = append(pool, pq)
		}
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, br := range core.ExecBatch(ctx, pool, workers) {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
		})
	}
}

// --- Corpus query service: sharded engine pool + plan cache -------------------
//
// The BenchmarkService* family measures the multi-document service layer:
// plan-cache hits must beat cold parse-plan-exec on repeated one-shot calls,
// and the corpus fan-out must scale with the shard/worker count.

func serviceCorpus(b *testing.B, docs int, opts ...service.Option) *service.Service {
	b.Helper()
	svc := service.New(opts...)
	for i := 0; i < docs; i++ {
		doc := workload.SiteDocument(workload.DocSpec{Items: 150, Regions: 6, DescriptionDepth: 2, Seed: int64(30 + i)})
		if err := svc.Add(fmt.Sprintf("doc%02d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

func BenchmarkServicePlanCache(b *testing.B) {
	// Repeated one-shot Query calls: "cached" goes through the service's plan
	// cache (compile once, execute thereafter), "cold" pays parse + classify +
	// plan + compile on every call like the pre-service one-shot API.  The
	// cache's margin tracks the route's compilation cost: roughly break-even
	// on cheap-to-parse XPath, a wide win on datalog (TMNF grounding) and the
	// rewrite route (acyclic-union construction).
	svc := serviceCorpus(b, 1)
	if err := svc.Add("tree00", workload.RandomTree(workload.TreeSpec{Nodes: 5000, Seed: 35, Alphabet: []string{"a", "b", "L"}})); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name, doc, lang, text string
	}{
		{"xpath", "doc00", core.LangXPath, "//item[name]/description//keyword"},
		{"datalog", "tree00", core.LangDatalog, ancestorProgram},
	}
	for _, c := range cases {
		eng, err := svc.Engine(c.doc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/cached", func(b *testing.B) {
			if _, _, err := svc.Query(ctx, c.doc, c.lang, c.text); err != nil { // warm cache + index
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := svc.Query(ctx, c.doc, c.lang, c.text); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pq, err := eng.Prepare(c.lang, c.text)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := pq.Exec(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServicePlanCacheSharded(b *testing.B) {
	// Concurrent warm Query calls spread over 8 documents, with the plan
	// cache either behind one shard (every lookup funnels through a single
	// mutex, the pre-sharding layout) or split across 8 shards (each
	// document's plans live next to its engine, so goroutines on different
	// documents never contend).  On a single-core box the shards=8 margin is
	// the shorter critical section alone; with real parallelism it grows
	// with the contention the single lock would have serialized.
	ctx := context.Background()
	const docs = 8
	queries := []string{"//item", "//item[name]/description//keyword", "//keyword", "//region//item"}
	for _, shards := range []int{1, 8} {
		svc := serviceCorpus(b, docs, service.WithShards(shards), service.WithPlanCacheSize(64))
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for d := 0; d < docs; d++ { // warm every (doc, query) plan
				for _, q := range queries {
					if _, _, err := svc.Query(ctx, fmt.Sprintf("doc%02d", d), core.LangXPath, q); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					doc := fmt.Sprintf("doc%02d", i%docs)
					if _, _, err := svc.Query(ctx, doc, core.LangXPath, queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkServiceQueryCorpus(b *testing.B) {
	// One query fanned out to a 16-document corpus at increasing shard /
	// worker counts over one shared service configuration per run.  Wall
	// clock shrinks with min(workers, GOMAXPROCS, docs): on a single-core
	// box the sub-benchmarks converge, on N cores the fan-out spreads.
	ctx := context.Background()
	const q = "//item[name]/description//keyword"
	for _, n := range []int{1, 2, 4, 8} {
		svc := serviceCorpus(b, 16, service.WithShards(n), service.WithWorkers(n))
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			for _, r := range svc.QueryCorpus(ctx, core.LangXPath, q) { // warm plans + indexes
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range svc.QueryCorpus(ctx, core.LangXPath, q) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

func BenchmarkServiceStreamCorpus(b *testing.B) {
	// Prepared streaming through the service: the transducer compiles once per
	// document, each fan-out replays pooled SAX events.
	svc := serviceCorpus(b, 8, service.WithWorkers(4))
	ctx := context.Background()
	for _, r := range svc.QueryCorpus(ctx, core.LangStream, "//item//keyword") {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range svc.QueryCorpus(ctx, core.LangStream, "//item//keyword") {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// --- Server: the HTTP/JSON front-end ---------------------------------------

// serverCorpus stands up the HTTP front-end over a warm corpus service.
func serverCorpus(b *testing.B, docs int, svcOpts []service.Option, srvOpts ...server.Option) (*httptest.Server, *service.Service) {
	b.Helper()
	svc := serviceCorpus(b, docs, svcOpts...)
	ts := httptest.NewServer(server.New(svc, srvOpts...))
	b.Cleanup(ts.Close)
	return ts, svc
}

func benchPost(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

func BenchmarkServerQuery(b *testing.B) {
	// One plan-cache-warm single-document query through the full HTTP stack
	// (connection reuse, JSON decode/encode, admission gate).  The margin over
	// BenchmarkServicePlanCache/xpath/cached is the transport overhead.
	ts, _ := serverCorpus(b, 1, nil)
	body := []byte(`{"doc":"doc00","lang":"xpath","query":"//item[name]/description//keyword"}`)
	benchPost(b, ts.URL+"/query", body) // warm the plan cache + index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/query", body)
	}
}

func BenchmarkServerCorpusQuery(b *testing.B) {
	// Corpus-wide fan-out with aggregation over HTTP: 8 documents merged,
	// sorted, and truncated to a 100-match page per request.
	ts, _ := serverCorpus(b, 8, []service.Option{service.WithWorkers(4)})
	body := []byte(`{"lang":"xpath","query":"//item[name]/description//keyword","limit":100}`)
	benchPost(b, ts.URL+"/corpus/query", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/corpus/query", body)
	}
}

func BenchmarkServerPreparedExec(b *testing.B) {
	// Executing a server-registered prepared query: the HTTP analogue of
	// PreparedQuery.Exec, with zero per-request compilation.
	ts, _ := serverCorpus(b, 1, nil)
	resp, err := http.Post(ts.URL+"/prepared", "application/json",
		bytes.NewReader([]byte(`{"doc":"doc00","lang":"xpath","query":"//item[name]/description//keyword"}`)))
	if err != nil {
		b.Fatal(err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if reg.ID == "" {
		b.Fatal("prepared registration returned no id")
	}
	url := ts.URL + "/prepared/" + reg.ID
	benchPost(b, url, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, url, nil)
	}
}

func BenchmarkServerAggregate(b *testing.B) {
	// Pure aggregation cost: merging, sorting, and limiting the fan-out of a
	// 32-document corpus without the HTTP layer.
	svc := serviceCorpus(b, 32, service.WithWorkers(4))
	ctx := context.Background()
	results := svc.QueryCorpus(ctx, core.LangXPath, "//item[name]/description//keyword")
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := service.Aggregate(results, 100)
		if agg.Total == 0 {
			b.Fatal("empty aggregate")
		}
	}
}

// --- Multi-label workloads: the label-complete XASR fast path --------------
//
// The BenchmarkMultiLabel* family measures multi-labeled (attribute-labeled)
// documents — the treegen -shape site workload — on the indexed evaluators
// versus the unindexed fallback those documents used to be demoted to when
// the XASR knew only primary labels.  The indexed side must win; that gap is
// the whole point of indexing every label.

// multiLabelSite is the shared site-shaped corpus document (multi-labeled:
// every item and region carries @id/@name attribute labels).
func multiLabelSite() *tree.Tree {
	return workload.SiteDocument(workload.DocSpec{Items: 400, Regions: 6, DescriptionDepth: 2, Seed: 71})
}

// labelsOnlyIndex reproduces the pre-label-complete index behavior on
// multi-labeled documents: label lists are served from the cache, but every
// structural-pair request is refused, demoting the evaluator to per-call
// StepFunc materialization.  It is the "pre-PR fallback" baseline of the
// BenchmarkMultiLabel* family.
type labelsOnlyIndex struct{ ix *index.Index }

func (l labelsOnlyIndex) NodesWithLabel(label string) []tree.NodeID {
	return l.ix.NodesWithLabel(label)
}

func (l labelsOnlyIndex) StructuralPairs(tree.Axis, string, string) (*relstore.Relation, bool) {
	return nil, false
}

func (l labelsOnlyIndex) LabelMask(label string) bitset.Bits {
	return l.ix.LabelMask(label)
}

func BenchmarkMultiLabelYannakakis(b *testing.B) {
	// A selective point lookup over an attribute label ("which region holds
	// item7?"): the labels-only fallback must StepFunc-walk every region's
	// whole subtree per call, while the label-complete index answers from one
	// cached merge-join relation.
	doc := multiLabelSite()
	q := cq.MustParse("Q(r) :- Lab[region](r), Child+(r, x), Lab[@id=item7](x).")
	b.Run("indexed", func(b *testing.B) {
		ix := index.New(doc)
		if _, err := yannakakis.EvaluateIndexed(q, doc, ix); err != nil { // warm the pair cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.EvaluateIndexed(q, doc, ix); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := ix.Snapshot(); s.PairBuilds == 0 || s.PairHits == 0 {
			b.Fatalf("indexed run did not use the pair cache: %+v", s)
		}
	})
	b.Run("fallback", func(b *testing.B) {
		fb := labelsOnlyIndex{ix: index.New(doc)}
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.EvaluateIndexed(q, doc, fb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMultiLabelXPath(b *testing.B) {
	doc := multiLabelSite()
	expr := xpath.MustParse("//item/description//keyword")
	b.Run("indexed", func(b *testing.B) {
		ix := index.New(doc)
		xpath.QueryIndexed(expr, doc, ix) // warm the pair cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(xpath.QueryIndexed(expr, doc, ix)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("fallback", func(b *testing.B) {
		// labelsOnlyIndex implements xpath.PairIndex but refuses every pair
		// request, so this measures the pre-PR behavior exactly: cached label
		// masks, SetImage steps, no structural-join shortcut.
		fb := labelsOnlyIndex{ix: index.New(doc)}
		for i := 0; i < b.N; i++ {
			if len(xpath.QueryIndexed(expr, doc, fb)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

func BenchmarkMultiLabelTwigPath(b *testing.B) {
	doc := multiLabelSite()
	path, err := twigjoin.Path([]string{"item", "keyword"}, []twigjoin.EdgeKind{twigjoin.DescendantEdge})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		ix := index.New(doc)
		if _, err := twigjoin.MatchPathIndexed(doc, path, ix); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := twigjoin.MatchPathIndexed(doc, path, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fallback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := twigjoin.MatchPath(doc, path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMultiLabelPrepared(b *testing.B) {
	// The full pipeline on a multi-labeled document: prepared CQ execution
	// over the engine's shared (label-complete) index, against the same
	// evaluator demoted to the pre-PR labels-only index.  The query uses an
	// attribute label on the from side — a restriction the primary-only XASR
	// could never serve.
	doc := multiLabelSite()
	eng := core.New(doc, core.WithStrategy(core.Yannakakis))
	q := cq.MustParse("Q(k) :- Lab[@name=africa](r), Child+(r, k), Lab[keyword](k).")
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		pq, err := eng.PrepareCQ(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pq.Exec(ctx); err != nil { // warm the index cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pq.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fallback", func(b *testing.B) {
		fb := labelsOnlyIndex{ix: index.New(doc)}
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.EvaluateIndexed(q, doc, fb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Similarity: top-k subtree search (LangSimilar, PR 8) -------------------

func BenchmarkSimilarTopK(b *testing.B) {
	// The ranked route's headline claim: size / label-histogram lower-bound
	// pruning admits only candidates that can still make the k-heap, so the
	// pruned evaluator beats the prune-free baseline (Naive strategy: a TED
	// kernel call per candidate subtree) by well over the 3x acceptance bar.
	doc := workload.RandomTree(workload.TreeSpec{Nodes: 4000, Seed: 808})
	const q = "k=10 a(b c)"
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts []core.Option
	}{
		{"pruned", nil},
		{"exhaustive", []core.Option{core.WithStrategy(core.Naive)}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := core.New(doc, tc.opts...)
			pq, err := eng.Prepare(core.LangSimilar, q)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := pq.Exec(ctx); err != nil { // warm the TED view
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pq.Exec(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Incremental updates: diff-then-patch vs. full rebuild (PR 9) -----------

// updateBenchRev builds a deterministic ~10k-node site-shaped document; the
// two revisions differ in exactly one deep leaf label (markA vs markB) — a
// shape-preserving single-node relabel whose touched labels are disjoint from
// every plan BenchmarkUpdateSmallEdit keeps warm.
func updateBenchRev(rev int) *tree.Tree {
	bld := tree.NewBuilder()
	root := bld.AddRoot("site")
	const items = 2500
	for i := 0; i < items; i++ {
		it := bld.AddChild(root, "item")
		bld.SetText(bld.AddChild(it, "name"), fmt.Sprintf("item%d", i))
		bld.AddChild(bld.AddChild(it, "description"), "keyword")
	}
	mark := "markA"
	if rev%2 == 1 {
		mark = "markB"
	}
	bld.AddChild(root, mark)
	return bld.MustBuild()
}

func BenchmarkUpdateSmallEdit(b *testing.B) {
	// The incremental-maintenance headline: a 1-node edit in a 10k-node
	// document, measured as time-to-fresh-answer — UpdateDoc plus re-running
	// the warm query battery against the new revision.  Engine construction
	// and index caches are lazy, so a bare rebuild only defers its cost to
	// the next query; timing update+query charges each arm what a client
	// actually waits.  "patched" (ratio 1) splices the columnar index and
	// rebinds label-disjoint plans without re-grounding; "rebuild" (ratio 0)
	// starts from a cold index and re-prepares every plan.  The patched arm
	// must win by >=5x.
	revs := [2]*tree.Tree{updateBenchRev(0), updateBenchRev(1)}
	ctx := context.Background()
	warm := []struct{ lang, text string }{
		{core.LangXPath, "//item[name]/description//keyword"},
		{core.LangDatalog, "P0(x) :- Lab[name](x).\nP0(x) :- NextSibling(x, y), P0(y).\nP(x) :- FirstChild(x, y), P0(y).\nP0(x) :- P(x).\n?- P."},
	}
	for _, tc := range []struct {
		name  string
		ratio float64
	}{
		{"patched", 1},
		{"rebuild", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			svc := service.New(service.WithPatchRatio(tc.ratio))
			if err := svc.Add("doc", revs[0]); err != nil {
				b.Fatal(err)
			}
			for _, q := range warm {
				if _, _, err := svc.Query(ctx, "doc", q.lang, q.text); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := svc.UpdateDoc("doc", revs[(i+1)%2])
				if err != nil {
					b.Fatal(err)
				}
				if o.Patched != (tc.ratio > 0) {
					b.Fatalf("update took the %s path in the %s arm", o.Mode(), tc.name)
				}
				for _, q := range warm {
					if _, _, err := svc.Query(ctx, "doc", q.lang, q.text); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if st := svc.Stats(); tc.ratio > 0 && st.PlansSkippedByLabelSet == 0 {
				b.Fatal("patched arm never skipped a label-disjoint re-grounding")
			}
		})
	}
}

func BenchmarkSimilarCorpusRanked(b *testing.B) {
	// Corpus-wide ranked fan-out through the /v1 envelope: per-document
	// k-heaps merged into one globally ordered top-k, end to end over HTTP.
	ts, _ := serverCorpus(b, 8, nil)
	defer ts.Close()
	body := []byte(`{"lang":"similar","query":"k=5 description(keyword)","limit":5}`)
	benchPost(b, ts.URL+"/v1/corpus/query", body) // warm per-doc plans
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/corpus/query", body)
	}
}
